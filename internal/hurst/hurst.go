// Package hurst estimates the Hurst parameter of a time series, used to
// verify that the repository's traffic generators deliver the long-range
// dependence they are designed for (paper §2: H > 0.5 defines LRD).
//
// Two classical estimators are provided:
//
//   - Variance-time (aggregated variance): the variance of the m-aggregated
//     series of an LRD process decays like m^{2H−2}; H is read off a
//     log-log regression slope.
//   - Rescaled range (R/S): E[R(n)/S(n)] ~ c·n^H; H is the log-log slope of
//     the rescaled range across block sizes.
//
// Both are slope estimators with well-known bias at finite lengths; tests
// assert band membership, not point equality.
package hurst

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// regress fits y = a + b·x by least squares, returning the slope b.
func regress(x, y []float64) float64 {
	mx, my := stats.Mean(x), stats.Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	return num / den
}

// aggregated returns the series averaged over non-overlapping blocks of
// size m (tail remainder discarded).
func aggregated(xs []float64, m int) []float64 {
	n := len(xs) / m
	out := make([]float64, n)
	for b := 0; b < n; b++ {
		out[b] = stats.Mean(xs[b*m : (b+1)*m])
	}
	return out
}

// blockSizes produces a geometric ladder of aggregation levels between
// lo and hi (inclusive-ish), suitable for slope regressions.
func blockSizes(lo, hi int) []int {
	var out []int
	prev := 0
	for f := float64(lo); f <= float64(hi); f *= 1.5 {
		m := int(f)
		if m > prev {
			out = append(out, m)
			prev = m
		}
	}
	return out
}

// VarianceTime estimates H by the aggregated-variance method. The series
// must contain at least 10× the largest aggregation level; levels span
// [lo, hi]. Typical usage: VarianceTime(xs, 10, len(xs)/20).
func VarianceTime(xs []float64, lo, hi int) (float64, error) {
	if lo < 2 || hi <= lo {
		return 0, fmt.Errorf("hurst: invalid aggregation range [%d, %d]", lo, hi)
	}
	if len(xs) < 10*hi {
		return 0, fmt.Errorf("hurst: series length %d too short for level %d", len(xs), hi)
	}
	base := stats.Variance(xs)
	if base == 0 {
		return 0, fmt.Errorf("hurst: constant series")
	}
	var lx, ly []float64
	for _, m := range blockSizes(lo, hi) {
		v := stats.Variance(aggregated(xs, m))
		if v <= 0 {
			continue
		}
		lx = append(lx, math.Log(float64(m)))
		ly = append(ly, math.Log(v/base))
	}
	if len(lx) < 3 {
		return 0, fmt.Errorf("hurst: too few usable aggregation levels")
	}
	beta := regress(lx, ly) // slope ≈ 2H − 2
	return 1 + beta/2, nil
}

// RS estimates H by the rescaled-range method over block sizes in
// [lo, hi]. Typical usage: RS(xs, 16, len(xs)/8).
func RS(xs []float64, lo, hi int) (float64, error) {
	if lo < 8 || hi <= lo {
		return 0, fmt.Errorf("hurst: invalid block range [%d, %d]", lo, hi)
	}
	if len(xs) < 2*hi {
		return 0, fmt.Errorf("hurst: series length %d too short for block %d", len(xs), hi)
	}
	var lx, ly []float64
	for _, n := range blockSizes(lo, hi) {
		blocks := len(xs) / n
		var sum float64
		var used int
		for b := 0; b < blocks; b++ {
			rs, ok := rescaledRange(xs[b*n : (b+1)*n])
			if ok {
				sum += rs
				used++
			}
		}
		if used == 0 {
			continue
		}
		lx = append(lx, math.Log(float64(n)))
		ly = append(ly, math.Log(sum/float64(used)))
	}
	if len(lx) < 3 {
		return 0, fmt.Errorf("hurst: too few usable block sizes")
	}
	return regress(lx, ly), nil
}

// rescaledRange computes R/S of one block: the range of the mean-adjusted
// cumulative sum divided by the block standard deviation.
func rescaledRange(block []float64) (float64, bool) {
	m := stats.Mean(block)
	sd := stats.StdDev(block)
	if sd == 0 {
		return 0, false
	}
	var cum, lo, hi float64
	for _, x := range block {
		cum += x - m
		if cum < lo {
			lo = cum
		}
		if cum > hi {
			hi = cum
		}
	}
	return (hi - lo) / sd, true
}
