package hurst

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fgn"
	"repro/internal/models"
	"repro/internal/traffic"
)

func whiteNoise(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestVarianceTimeWhiteNoise(t *testing.T) {
	h, err := VarianceTime(whiteNoise(200000, 1), 10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.06 {
		t.Fatalf("white noise H = %v, want ≈0.5", h)
	}
}

func TestRSWhiteNoise(t *testing.T) {
	h, err := RS(whiteNoise(200000, 2), 16, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// R/S is biased upward at finite n; accept the classical band.
	if h < 0.45 || h > 0.62 {
		t.Fatalf("white noise R/S H = %v, want ≈0.5-0.6", h)
	}
}

func TestVarianceTimeFGN(t *testing.T) {
	for _, hTrue := range []float64{0.7, 0.9} {
		m, err := fgn.NewModel(hTrue, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		xs := traffic.Generate(m.NewGenerator(3), 1<<18)
		h, err := VarianceTime(xs, 10, len(xs)/20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-hTrue) > 0.08 {
			t.Fatalf("FGN H=%v: estimated %v", hTrue, h)
		}
	}
}

func TestRSFGN(t *testing.T) {
	m, err := fgn.NewModel(0.85, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(m.NewGenerator(7), 1<<18)
	h, err := RS(xs, 32, len(xs)/8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.85) > 0.1 {
		t.Fatalf("FGN H=0.85: R/S estimated %v", h)
	}
}

func TestVarianceTimeZModelIsLRD(t *testing.T) {
	// The paper's Z^a is designed with H = 0.9; the estimator should
	// clearly separate it from SRD (H = 0.5).
	z, err := models.NewZ(0.7)
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(z.NewGenerator(5), 300000)
	h, err := VarianceTime(xs, 20, len(xs)/30)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.72 {
		t.Fatalf("Z^0.7 estimated H = %v; LRD signature missing", h)
	}
	if h > 1.02 {
		t.Fatalf("Z^0.7 estimated H = %v out of range", h)
	}
}

func TestEstimatorInputValidation(t *testing.T) {
	xs := whiteNoise(1000, 4)
	if _, err := VarianceTime(xs, 1, 50); err == nil {
		t.Error("lo < 2 should error")
	}
	if _, err := VarianceTime(xs, 50, 20); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := VarianceTime(xs, 10, 500); err == nil {
		t.Error("series too short should error")
	}
	if _, err := RS(xs, 4, 100); err == nil {
		t.Error("lo < 8 should error")
	}
	if _, err := RS(xs, 16, 900); err == nil {
		t.Error("series too short for blocks should error")
	}
	constant := make([]float64, 5000)
	if _, err := VarianceTime(constant, 10, 100); err == nil {
		t.Error("constant series should error")
	}
}

func TestRescaledRangeKnownBlock(t *testing.T) {
	// Block {1, −1, 1, −1}: mean 0, sd 1, cumulative sums 1, 0, 1, 0 →
	// range 1, so R/S = 1.
	rs, ok := rescaledRange([]float64{1, -1, 1, -1})
	if !ok || math.Abs(rs-1) > 1e-12 {
		t.Fatalf("R/S = %v ok=%v, want 1", rs, ok)
	}
	if _, ok := rescaledRange([]float64{3, 3, 3}); ok {
		t.Fatal("constant block should be rejected")
	}
}

func TestBlockSizesAscending(t *testing.T) {
	bs := blockSizes(10, 1000)
	if len(bs) < 5 {
		t.Fatalf("too few block sizes: %v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("not strictly ascending: %v", bs)
		}
	}
}
