package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("got %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("got %v, want 4", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Fatalf("single-sample variance = %v, want 0", got)
	}
	n := float64(len(xs))
	if got, want := SampleVariance(xs), 4*n/(n-1); !almostEq(got, want, 1e-12) {
		t.Fatalf("sample variance = %v, want %v", got, want)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("got %v, want 2", got)
	}
}

func TestAutocovarianceLag0IsVariance(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 2, 8}
	if got, want := Autocovariance(xs, 0), Variance(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("lag-0 autocovariance %v != variance %v", got, want)
	}
}

func TestAutocovarianceSymmetricLag(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 2, 8}
	if got, want := Autocovariance(xs, -2), Autocovariance(xs, 2); got != want {
		t.Fatalf("negative lag %v != positive lag %v", got, want)
	}
}

func TestAutocovarianceOutOfRange(t *testing.T) {
	if got := Autocovariance([]float64{1, 2}, 5); got != 0 {
		t.Fatalf("got %v, want 0 for lag beyond series", got)
	}
}

func TestACFConstantSeries(t *testing.T) {
	acf := ACF([]float64{5, 5, 5, 5}, 2)
	for k, v := range acf {
		if v != 0 {
			t.Fatalf("constant series ACF[%d] = %v, want 0", k, v)
		}
	}
}

func TestACFAlternatingSeries(t *testing.T) {
	// +1, -1, +1, ... has ACF close to (-1)^k.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	acf := ACF(xs, 3)
	if acf[0] != 1 {
		t.Fatalf("ACF[0] = %v, want 1", acf[0])
	}
	if !almostEq(acf[1], -1, 0.01) || !almostEq(acf[2], 1, 0.01) {
		t.Fatalf("ACF = %v, want approx [1 -1 1 -1]", acf)
	}
}

func TestACFWhiteNoiseNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := ACF(xs, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]) > 0.02 {
			t.Fatalf("white-noise ACF[%d] = %v, want ~0", k, acf[k])
		}
	}
}

// Property: ACF values always lie in [-1, 1] for the biased estimator.
func TestACFBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		for _, v := range ACF(xs, n/2) {
			if v < -1-1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || !almostEq(s.Mean, 2, 1e-12) {
		t.Fatalf("bad summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should have N=0")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestReplicationCI(t *testing.T) {
	reps := []float64{10, 12, 11, 9, 13, 10, 11, 12}
	ci := ReplicationCI(reps, 0.95)
	if !almostEq(ci.Point, Mean(reps), 1e-12) {
		t.Fatalf("point = %v, want mean", ci.Point)
	}
	if ci.Half <= 0 {
		t.Fatal("half-width should be positive")
	}
	if ci.Low() >= ci.High() {
		t.Fatal("degenerate interval")
	}
	if ci.String() == "" {
		t.Fatal("empty String()")
	}
	// Single replication: no spread information.
	if ReplicationCI([]float64{5}, 0.95).Half != 0 {
		t.Fatal("single-rep CI should have zero half-width")
	}
}

func TestReplicationCICoverage(t *testing.T) {
	// Empirical coverage of the 95% CI for the mean of N(0,1) with 30 reps
	// should be close to 0.95.
	rng := rand.New(rand.NewSource(42))
	trials, covered := 400, 0
	for i := 0; i < trials; i++ {
		reps := make([]float64, 30)
		for j := range reps {
			reps[j] = rng.NormFloat64()
		}
		ci := ReplicationCI(reps, 0.95)
		if ci.Low() <= 0 && 0 <= ci.High() {
			covered++
		}
	}
	cov := float64(covered) / float64(trials)
	if cov < 0.90 || cov > 0.99 {
		t.Fatalf("empirical coverage %v, want ≈0.95", cov)
	}
}

func TestBatchMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7} // remainder 7 discarded with 3 batches
	bm := BatchMeans(xs, 3)
	want := []float64{1.5, 3.5, 5.5}
	for i := range want {
		if !almostEq(bm[i], want[i], 1e-12) {
			t.Fatalf("batch %d = %v, want %v", i, bm[i], want[i])
		}
	}
	if BatchMeans(xs, 0) != nil || BatchMeans(xs, 8) != nil {
		t.Fatal("invalid batch configurations should return nil")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalTailComplement(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 5} {
		if got, want := NormalTail(x), 1-NormalCDF(x); !almostEq(got, want, 1e-12) {
			t.Fatalf("tail(%v) = %v, want %v", x, got, want)
		}
	}
	// Stable far tail: naive 1-CDF would round to 0 long before x = 30.
	if got := NormalTail(30); got <= 0 || got > 1e-190 {
		t.Fatalf("far tail %v not in (0, 1e-190]", got)
	}
}

func TestNormalPDFPeak(t *testing.T) {
	if got := NormalPDF(0); !almostEq(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Fatalf("pdf(0) = %v", got)
	}
}

func TestNormalLoss(t *testing.T) {
	// E[(Z-0)^+] = 1/sqrt(2π).
	if got := NormalLoss(0); !almostEq(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Fatalf("loss(0) = %v", got)
	}
	// Loss is decreasing and positive.
	prev := math.Inf(1)
	for x := -3.0; x <= 4; x += 0.5 {
		l := NormalLoss(x)
		if l <= 0 || l >= prev {
			t.Fatalf("loss not positive-decreasing at %v: %v (prev %v)", x, l, prev)
		}
		prev = l
	}
	// For very negative t, E[(Z-t)^+] ≈ -t.
	if got := NormalLoss(-8); !almostEq(got, 8, 1e-6) {
		t.Fatalf("loss(-8) = %v, want ≈8", got)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-6, 0.001, 0.01, 0.3, 0.5, 0.7, 0.975, 0.999999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEq(got, p, 1e-9) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if NormalQuantile(0.5) != 0 {
		t.Fatalf("median quantile = %v, want 0", NormalQuantile(0.5))
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile at 0/1 should be ∓Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) || !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Fatal("out-of-range p should be NaN")
	}
}

// Property: quantile is monotone in p.
func TestNormalQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
