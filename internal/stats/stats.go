// Package stats provides the descriptive statistics and Gaussian
// distribution functions used throughout the reproduction: moment
// estimators, autocorrelation estimation, replication confidence
// intervals, and the standard normal CDF/quantile/loss functions that the
// large-deviations formulas and simulation cross-checks rely on.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (normalised by n, matching
// the paper's use of σ² as a process parameter). It returns 0 for fewer than
// two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased (n-1) sample variance of xs.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return Variance(xs) * float64(n) / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Autocovariance returns the lag-k sample autocovariance of xs using the
// biased (1/n) estimator, which is the standard choice for ACF estimation
// because it guarantees a positive semi-definite autocovariance sequence.
func Autocovariance(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 {
		k = -k
	}
	if k >= n {
		return 0
	}
	m := Mean(xs)
	var s float64
	for i := 0; i+k < n; i++ {
		s += (xs[i] - m) * (xs[i+k] - m)
	}
	return s / float64(n)
}

// ACF returns the sample autocorrelation function of xs at lags 0..maxLag.
// The lag-0 value is always 1 (or 0 for a constant series).
func ACF(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	c0 := Autocovariance(xs, 0)
	if c0 == 0 {
		return out
	}
	out[0] = 1
	for k := 1; k <= maxLag; k++ {
		out[k] = Autocovariance(xs, k) / c0
	}
	return out
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary holds the usual five-number-style description of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance
	Min      float64
	Max      float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Variance = Variance(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g var=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.Variance, s.Min, s.Max)
}

// CI is a symmetric confidence interval around a point estimate.
type CI struct {
	Point  float64
	Half   float64 // half-width; the interval is [Point-Half, Point+Half]
	Level  float64 // nominal coverage, e.g. 0.95
	NumObs int
}

// Low returns the lower endpoint of the interval.
func (c CI) Low() float64 { return c.Point - c.Half }

// High returns the upper endpoint of the interval.
func (c CI) High() float64 { return c.Point + c.Half }

func (c CI) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%d obs, %.0f%%)", c.Point, c.Half, c.NumObs, c.Level*100)
}

// ReplicationCI forms a normal-approximation confidence interval from
// independent replication estimates (the paper's 60-replication design).
// level is the two-sided coverage, e.g. 0.95.
func ReplicationCI(reps []float64, level float64) CI {
	n := len(reps)
	ci := CI{Point: Mean(reps), Level: level, NumObs: n}
	if n < 2 {
		return ci
	}
	se := math.Sqrt(SampleVariance(reps) / float64(n))
	z := NormalQuantile(0.5 + level/2)
	ci.Half = z * se
	return ci
}

// BatchMeans splits xs into nbatch equal contiguous batches (discarding any
// remainder at the tail) and returns the batch means. It is the classic
// output-analysis device for dependent simulation output.
func BatchMeans(xs []float64, nbatch int) []float64 {
	if nbatch < 1 || len(xs) < nbatch {
		return nil
	}
	size := len(xs) / nbatch
	out := make([]float64, nbatch)
	for b := 0; b < nbatch; b++ {
		out[b] = Mean(xs[b*size : (b+1)*size])
	}
	return out
}

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTail returns P(Z > x) = 1 - NormalCDF(x), computed stably for
// large x via erfc.
func NormalTail(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalLoss returns E[(Z - t)^+] for a standard normal Z, the unit normal
// loss function φ(t) − t·Q(t). It is the exact zero-buffer fluid loss per
// unit standard deviation and is used to validate simulated CLR at B = 0.
func NormalLoss(t float64) float64 {
	return NormalPDF(t) - t*NormalTail(t)
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation refined by one
// Halley step; absolute error is below 1e-9 across (0, 1).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		//lint:floateq boundary sentinel: exactly p=1 maps to +Inf, any other p≥1 is an invalid quantile
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
