package fgn

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestNewModelValidation(t *testing.T) {
	for _, h := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewModel(h, 0, 1); err == nil {
			t.Errorf("H=%v: expected error", h)
		}
	}
	if _, err := NewModel(0.8, 0, 0); err == nil {
		t.Error("zero variance: expected error")
	}
	if _, err := NewModel(0.8, 0, -1); err == nil {
		t.Error("negative variance: expected error")
	}
}

func TestACFExactForm(t *testing.T) {
	m, err := NewModel(0.9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.ACF(0) != 1 {
		t.Fatal("ACF(0) != 1")
	}
	// r(1) = ½(2^{2H} − 2) for FGN.
	want := 0.5 * (math.Pow(2, 1.8) - 2)
	if got := m.ACF(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ACF(1) = %v, want %v", got, want)
	}
	if m.ACF(-7) != m.ACF(7) {
		t.Fatal("ACF not symmetric")
	}
}

func TestACFWhiteNoiseCase(t *testing.T) {
	m, err := NewModel(0.5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		if got := m.ACF(k); math.Abs(got) > 1e-12 {
			t.Fatalf("H=0.5 ACF(%d) = %v, want 0", k, got)
		}
	}
}

func TestACFPowerLawTail(t *testing.T) {
	m, err := NewModel(0.86, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// r(k) ~ H(2H−1)k^{2H−2}.
	h := 0.86
	for _, k := range []int{100, 1000} {
		want := h * (2*h - 1) * math.Pow(float64(k), 2*h-2)
		if got := m.ACF(k); math.Abs(got-want)/want > 0.01 {
			t.Fatalf("ACF(%d) = %v, asymptotic %v", k, got, want)
		}
	}
}

func TestGeneratorMomentsAndACF(t *testing.T) {
	m, err := NewModel(0.8, 500, 5000)
	if err != nil {
		t.Fatal(err)
	}
	m.BlockLen = 1 << 14
	xs := traffic.Generate(m.NewGenerator(6), 1<<17)
	if got := stats.Mean(xs); math.Abs(got-500) > 8 {
		t.Fatalf("mean %v, want ≈500", got)
	}
	if got := stats.Variance(xs); math.Abs(got-5000)/5000 > 0.12 {
		t.Fatalf("variance %v, want ≈5000", got)
	}
	acf := stats.ACF(xs, 20)
	for k := 1; k <= 20; k++ {
		if math.Abs(acf[k]-m.ACF(k)) > 0.05 {
			t.Fatalf("ACF(%d) = %v, analytic %v", k, acf[k], m.ACF(k))
		}
	}
}

func TestGeneratorGaussianMarginal(t *testing.T) {
	m, err := NewModel(0.75, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.BlockLen = 1 << 13
	xs := traffic.Generate(m.NewGenerator(9), 1<<16)
	// Standard normal quantile checks.
	for _, q := range []struct{ p, want float64 }{
		{0.5, 0}, {0.8413, 1}, {0.1587, -1},
	} {
		if got := stats.Quantile(xs, q.p); math.Abs(got-q.want) > 0.06 {
			t.Fatalf("quantile(%v) = %v, want ≈%v", q.p, got, q.want)
		}
	}
}

func TestGeneratorCrossesBlocks(t *testing.T) {
	m, err := NewModel(0.7, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	m.BlockLen = 64 // force many refills
	xs := traffic.Generate(m.NewGenerator(4), 10000)
	if got := stats.Mean(xs); math.Abs(got-100) > 1 {
		t.Fatalf("mean across blocks %v, want ≈100", got)
	}
	if got := stats.Variance(xs); math.Abs(got-25)/25 > 0.15 {
		t.Fatalf("variance across blocks %v, want ≈25", got)
	}
}

func TestGeneratorReproducible(t *testing.T) {
	m, _ := NewModel(0.85, 0, 1)
	m.BlockLen = 256
	a := traffic.Generate(m.NewGenerator(11), 600)
	b := traffic.Generate(m.NewGenerator(11), 600)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestGeneratorNonPow2BlockLenNormalised(t *testing.T) {
	m, _ := NewModel(0.8, 0, 1)
	m.BlockLen = 100 // not a power of two; generator must cope
	xs := traffic.Generate(m.NewGenerator(2), 500)
	if len(xs) != 500 {
		t.Fatal("generator failed with non-power-of-two block length")
	}
	for _, v := range xs {
		if math.IsNaN(v) {
			t.Fatal("NaN sample")
		}
	}
}

func TestEigenvaluesNonNegative(t *testing.T) {
	for _, h := range []float64{0.55, 0.7, 0.9, 0.99} {
		m, _ := NewModel(h, 0, 1)
		for _, s := range eigenvalues(m, 1024) {
			if s < 0 || math.IsNaN(s) {
				t.Fatalf("H=%v: bad eigenvalue sqrt %v", h, s)
			}
		}
	}
}

func TestModelName(t *testing.T) {
	m, _ := NewModel(0.9, 0, 1)
	if m.Name() == "" {
		t.Fatal("empty name")
	}
	m.SetName("fgn-x")
	if m.Name() != "fgn-x" {
		t.Fatal("SetName failed")
	}
}

func BenchmarkGeneratorFrame(b *testing.B) {
	m, _ := NewModel(0.9, 500, 5000)
	g := m.NewGenerator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}

func BenchmarkSynthesis64k(b *testing.B) {
	m, _ := NewModel(0.9, 500, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := m.NewGenerator(int64(i))
		_ = g.NextFrame() // forces one full block synthesis
	}
}
