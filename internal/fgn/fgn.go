// Package fgn synthesises exact discrete-time fractional Gaussian noise
// (FGN), the canonical exact long-range-dependent process of paper §2: a
// stationary Gaussian sequence whose autocorrelation is
//
//	r(k) = ½∇²(|k|^{2H}) = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})
//
// i.e. the g(Ts) = 1 case of the paper's exact-LRD definition (Eq. 2).
//
// Synthesis uses the Davies-Harte circulant embedding method: the length-2n
// circulant built from the autocovariance sequence has a non-negative real
// spectrum for FGN, so an exact sample of length n costs two FFTs. The
// method produces exact finite-dimensional distributions within a block;
// successive blocks are independent, which matters only at lags comparable
// to the block size (documented on Generator).
package fgn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/fft"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// Eigenvalue-cache effectiveness counters: one miss per distinct
// (model, block length) pays the circulant FFT; every further generator of
// the same model is a hit. An N-source multiplexer run should record N−1
// hits per miss — regression here means the spectrum is being recomputed
// per source again.
var (
	metEigHits   = telemetry.Default.Counter("fgn_eig_cache_hits_total")
	metEigMisses = telemetry.Default.Counter("fgn_eig_cache_misses_total")
)

// Model is a fractional Gaussian noise frame-size process with mean μ,
// variance σ² and Hurst parameter H, implementing traffic.Model.
type Model struct {
	H        float64
	mean     float64
	variance float64
	name     string
	acf      func(k int) float64 // nil = exact FGN autocorrelation
	// BlockLen is the synthesis block length (power of two). Larger blocks
	// preserve correlation to longer lags at higher memory cost.
	BlockLen int

	// eigMu guards eigCache, the memoised circulant spectrum per block
	// length. The spectrum depends only on (ACF, n), so the N generators
	// of one multiplexer run share a single FFT instead of recomputing
	// identical eigenvalues N times.
	eigMu    sync.Mutex
	eigCache map[int][]float64
}

// NewGaussianFromACF builds a stationary Gaussian process with an
// arbitrary autocorrelation function via the same circulant-embedding
// synthesis used for FGN. The ACF must be positive semi-definite; small
// negative circulant eigenvalues from truncation are clamped to zero,
// which perturbs the law slightly — callers should verify the empirical
// ACF when using aggressive correlation structures. acf(0) must be 1.
//
// This is how package farima synthesises exact F-ARIMA(0,d,0) paths
// without O(n²) Durbin-Levinson recursions.
func NewGaussianFromACF(name string, mean, variance float64, acf func(k int) float64) (*Model, error) {
	if variance <= 0 {
		return nil, fmt.Errorf("fgn: variance %v must be positive", variance)
	}
	if acf == nil {
		return nil, fmt.Errorf("fgn: nil ACF")
	}
	if r0 := acf(0); math.Abs(r0-1) > 1e-12 {
		return nil, fmt.Errorf("fgn: acf(0) = %v, want 1", r0)
	}
	return &Model{
		H:        0,
		mean:     mean,
		variance: variance,
		name:     name,
		acf:      acf,
		BlockLen: DefaultBlockLen,
	}, nil
}

// DefaultBlockLen is the synthesis block size used when the caller does not
// override Model.BlockLen: long enough that block-boundary independence is
// invisible at the lag ranges this repository studies (≤ a few thousand).
const DefaultBlockLen = 1 << 16

// NewModel validates and constructs an FGN model. H must lie in (0, 1);
// H = 0.5 degenerates to white Gaussian noise (still valid).
func NewModel(h, mean, variance float64) (*Model, error) {
	if h <= 0 || h >= 1 {
		return nil, fmt.Errorf("fgn: Hurst parameter %v outside (0, 1)", h)
	}
	if variance <= 0 {
		return nil, fmt.Errorf("fgn: variance %v must be positive", variance)
	}
	return &Model{
		H:        h,
		mean:     mean,
		variance: variance,
		name:     fmt.Sprintf("FGN(H=%.3g)", h),
		BlockLen: DefaultBlockLen,
	}, nil
}

// Name implements traffic.Model.
func (m *Model) Name() string { return m.name }

// SetName overrides the display name.
func (m *Model) SetName(name string) { m.name = name }

// Mean implements traffic.Model.
func (m *Model) Mean() float64 { return m.mean }

// Variance implements traffic.Model.
func (m *Model) Variance() float64 { return m.variance }

// ACF implements traffic.Model: the exact FGN autocorrelation
// ½∇²(|k|^{2H}), or the custom ACF supplied to NewGaussianFromACF.
func (m *Model) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	if m.acf != nil {
		return m.acf(k)
	}
	e := 2 * m.H
	fk := float64(k)
	return 0.5 * (math.Pow(fk+1, e) - 2*math.Pow(fk, e) + math.Pow(fk-1, e))
}

// generator serves FGN samples block by block.
type generator struct {
	m     *Model
	rng   *rand.Rand
	sqrtL []float64 // sqrt of circulant eigenvalues, length 2n
	block []float64
	pos   int
}

// NewGenerator implements traffic.Model. Samples within a block of
// m.BlockLen frames have the exact FGN joint distribution; distinct blocks
// are independent. Distinct seeds give independent paths.
func (m *Model) NewGenerator(seed int64) traffic.Generator {
	n := m.BlockLen
	if !fft.IsPow2(n) || n < 2 {
		n = fft.NextPow2(max(n, 2))
	}
	g := &generator{
		m:     m,
		rng:   randx.NewRand(seed),
		sqrtL: m.eigenvaluesCached(n),
	}
	g.fill(n)
	return g
}

// eigenvaluesCached memoises eigenvalues per block length.
func (m *Model) eigenvaluesCached(n int) []float64 {
	m.eigMu.Lock()
	defer m.eigMu.Unlock()
	if v, ok := m.eigCache[n]; ok {
		metEigHits.Inc()
		return v
	}
	metEigMisses.Inc()
	if m.eigCache == nil {
		m.eigCache = make(map[int][]float64)
	}
	v := eigenvalues(m, n)
	m.eigCache[n] = v
	return v
}

// eigenvalues computes the square roots of the 2n circulant eigenvalues of
// the FGN autocovariance. For FGN these are provably non-negative; tiny
// negative rounding residue is clamped to zero.
func eigenvalues(m *Model, n int) []float64 {
	c := make([]complex128, 2*n)
	for k := 0; k <= n; k++ {
		c[k] = complex(m.ACF(k), 0)
	}
	for k := 1; k < n; k++ {
		c[2*n-k] = c[k]
	}
	// The circulant spectrum of a symmetric first row is real.
	if err := fft.Forward(c); err != nil {
		panic("fgn: internal fft size invariant violated: " + err.Error())
	}
	out := make([]float64, 2*n)
	for i, v := range c {
		lam := real(v)
		if lam < 0 {
			lam = 0
		}
		out[i] = math.Sqrt(lam)
	}
	return out
}

// fill synthesises the next exact block of n samples.
func (g *generator) fill(n int) {
	two := 2 * n
	w := make([]complex128, two)
	norm := 1 / math.Sqrt(float64(two))
	w[0] = complex(g.sqrtL[0]*g.rng.NormFloat64()*norm, 0)
	w[n] = complex(g.sqrtL[n]*g.rng.NormFloat64()*norm, 0)
	invSqrt2 := 1 / math.Sqrt2
	for k := 1; k < n; k++ {
		re := g.rng.NormFloat64() * invSqrt2
		im := g.rng.NormFloat64() * invSqrt2
		w[k] = complex(g.sqrtL[k]*re*norm, g.sqrtL[k]*im*norm)
		w[two-k] = complex(real(w[k]), -imag(w[k]))
	}
	if err := fft.Forward(w); err != nil {
		panic("fgn: internal fft size invariant violated: " + err.Error())
	}
	sd := math.Sqrt(g.m.variance)
	if cap(g.block) < n {
		g.block = make([]float64, n)
	}
	g.block = g.block[:n]
	for i := 0; i < n; i++ {
		g.block[i] = g.m.mean + sd*real(w[i])
	}
	g.pos = 0
}

// NextFrame implements traffic.Generator.
func (g *generator) NextFrame() float64 {
	if g.pos >= len(g.block) {
		g.fill(len(g.block))
	}
	v := g.block[g.pos]
	g.pos++
	return v
}

// Fill implements traffic.BlockGenerator: bulk copies out of the
// synthesised block, refilling at block boundaries. The draw order is
// identical to repeated NextFrame calls, so the path is bit-identical to
// the scalar protocol.
func (g *generator) Fill(dst []float64) {
	for len(dst) > 0 {
		if g.pos >= len(g.block) {
			g.fill(len(g.block))
		}
		n := copy(dst, g.block[g.pos:])
		g.pos += n
		dst = dst[n:]
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
