// Package mginf implements the M/G/∞ input process of Cox — the model
// behind the hyperbolic-decay results of Likhanov, Tsybakov & Georganas
// and Parulekar & Makowski that the paper's §4.1 discusses. Sessions
// arrive as a Poisson process, hold for i.i.d. Pareto-tailed durations,
// and each active session contributes a constant cell rate; sampling the
// occupancy at frame boundaries yields an asymptotically LRD frame-size
// process with Poisson marginal.
//
// With session durations S Pareto(γ, s0) — P(S > u) = (s0/u)^γ for
// u ≥ s0, 1 < γ < 2 — the stationary occupancy N is Poisson with mean
// ν = λ_s·E[S], E[S] = s0·γ/(γ−1), and the sampled-occupancy ACF is
//
//	r(k) = (1/E[S])·∫_{kTs}^∞ P(S > u) du
//	     = 1 − (γ−1)kTs/(γ s0)                      kTs ≤ s0
//	     = (1/γ)·(kTs/s0)^{1−γ}                     kTs > s0
//
// so r(k) ~ k^{1−γ}: an asymptotic LRD process with H = (3−γ)/2.
package mginf

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/randx"
	"repro/internal/traffic"
)

// Params parameterises an M/G/∞ frame-size source.
type Params struct {
	SessionRate float64 // λ_s, session arrivals per second
	MinHold     float64 // s0, minimum session duration in seconds
	Gamma       float64 // Pareto tail index, 1 < γ < 2
	Rate        float64 // ρ, cells/frame contributed by one active session
	Ts          float64 // frame duration in seconds
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.SessionRate <= 0 {
		return fmt.Errorf("mginf: session rate %v must be positive", p.SessionRate)
	}
	if p.MinHold <= 0 {
		return fmt.Errorf("mginf: minimum hold %v must be positive", p.MinHold)
	}
	if p.Gamma <= 1 || p.Gamma >= 2 {
		return fmt.Errorf("mginf: gamma %v outside (1, 2)", p.Gamma)
	}
	if p.Rate <= 0 {
		return fmt.Errorf("mginf: per-session rate %v must be positive", p.Rate)
	}
	if p.Ts <= 0 {
		return fmt.Errorf("mginf: frame duration %v must be positive", p.Ts)
	}
	return nil
}

// MeanHold returns E[S] = s0·γ/(γ−1).
func (p Params) MeanHold() float64 {
	return p.MinHold * p.Gamma / (p.Gamma - 1)
}

// Occupancy returns ν = λ_s·E[S], the mean number of active sessions.
func (p Params) Occupancy() float64 { return p.SessionRate * p.MeanHold() }

// Hurst returns H = (3−γ)/2.
func (p Params) Hurst() float64 { return (3 - p.Gamma) / 2 }

// Model is an M/G/∞ frame-size source implementing traffic.Model.
type Model struct {
	P    Params
	name string
}

// New validates p and wraps it as a traffic.Model.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{P: p, name: fmt.Sprintf("M/G/inf(γ=%.3g)", p.Gamma)}, nil
}

// NewFromMoments builds an M/G/∞ model hitting the requested frame-size
// mean and variance (variance > mean, since the occupancy is Poisson and
// ρ = variance/mean must exceed 1 cell/frame), Hurst parameter (in
// (0.5, 1)) and minimum session hold s0.
func NewFromMoments(mean, variance, hurst, minHold, ts float64) (*Model, error) {
	if mean <= 0 || variance <= mean {
		return nil, fmt.Errorf("mginf: need variance %v > mean %v > 0", variance, mean)
	}
	if hurst <= 0.5 || hurst >= 1 {
		return nil, fmt.Errorf("mginf: Hurst %v outside (0.5, 1)", hurst)
	}
	gamma := 3 - 2*hurst
	rho := variance / mean
	nu := mean / rho
	meanHold := minHold * gamma / (gamma - 1)
	p := Params{
		SessionRate: nu / meanHold,
		MinHold:     minHold,
		Gamma:       gamma,
		Rate:        rho,
		Ts:          ts,
	}
	return New(p)
}

// Name implements traffic.Model.
func (m *Model) Name() string { return m.name }

// SetName overrides the display name.
func (m *Model) SetName(name string) { m.name = name }

// Mean implements traffic.Model: ρ·ν cells/frame.
func (m *Model) Mean() float64 { return m.P.Rate * m.P.Occupancy() }

// Variance implements traffic.Model: ρ²·ν (Poisson occupancy).
func (m *Model) Variance() float64 { return m.P.Rate * m.P.Rate * m.P.Occupancy() }

// ACF implements traffic.Model (sampled-occupancy autocorrelation; see the
// package comment for the closed form).
func (m *Model) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	t := float64(k) * m.P.Ts
	g, s0 := m.P.Gamma, m.P.MinHold
	if t <= s0 {
		return 1 - (g-1)*t/(g*s0)
	}
	return math.Pow(t/s0, 1-g) / g
}

// expiryHeap is a min-heap of session expiry times.
type expiryHeap []float64

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// generator simulates the session process and samples occupancy at frame
// boundaries.
type generator struct {
	p   Params
	rng *rand.Rand
	exp expiryHeap
	now float64
}

// NewGenerator implements traffic.Model. The session population starts in
// equilibrium: Poisson(ν) sessions with equilibrium residual holds, so the
// sampled process is stationary from the first frame.
func (m *Model) NewGenerator(seed int64) traffic.Generator {
	rng := randx.NewRand(seed)
	g := &generator{p: m.P, rng: rng}
	n := randx.Poisson(rng, m.P.Occupancy())
	for i := int64(0); i < n; i++ {
		heap.Push(&g.exp, g.sampleResidual())
	}
	return g
}

// sampleHold draws a fresh Pareto(γ, s0) session duration.
func (g *generator) sampleHold() float64 {
	// 1−Float64() ∈ (0, 1] avoids an infinite duration at u = 0.
	return g.p.MinHold * math.Pow(1-g.rng.Float64(), -1/g.p.Gamma)
}

// sampleResidual draws from the equilibrium residual-life distribution of
// the Pareto hold: density P(S>t)/E[S], solved in closed form piecewise
// (uniform below s0, power tail above).
func (g *generator) sampleResidual() float64 {
	y := g.rng.Float64() * g.p.MeanHold()
	s0, gam := g.p.MinHold, g.p.Gamma
	if y <= s0 {
		return y
	}
	// y − s0 = (s0/(γ−1))·(1 − (s0/t)^{γ−1})
	base := 1 - (gam-1)*(y-s0)/s0
	if base <= 0 {
		return s0 * 1e12 // u → 1 rounding guard: a very long residual
	}
	return s0 * math.Pow(base, -1/(gam-1))
}

// NextFrame implements traffic.Generator: advance one frame, admit the
// frame's Poisson arrivals (with uniform arrival instants), expire finished
// sessions, and return ρ × (occupancy at the frame boundary).
func (g *generator) NextFrame() float64 { return g.frame() }

// Fill implements traffic.BlockGenerator: the session bookkeeping runs
// over a whole chunk per virtual call, in the same draw order as the
// scalar protocol (bit-identical paths).
func (g *generator) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.frame()
	}
}

// frame advances the session process one frame.
func (g *generator) frame() float64 {
	next := g.now + g.p.Ts
	arrivals := randx.Poisson(g.rng, g.p.SessionRate*g.p.Ts)
	for i := int64(0); i < arrivals; i++ {
		at := g.now + g.rng.Float64()*g.p.Ts
		end := at + g.sampleHold()
		if end > next {
			heap.Push(&g.exp, end)
		}
	}
	g.now = next
	for g.exp.Len() > 0 && g.exp[0] <= g.now {
		heap.Pop(&g.exp)
	}
	return g.p.Rate * float64(g.exp.Len())
}
