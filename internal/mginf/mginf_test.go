package mginf

import (
	"math"
	"testing"

	"repro/internal/hurst"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// std is an M/G/∞ source matching the paper's marginal: mean 500,
// variance 5000 (ρ = 10, ν = 50), H = 0.9, s0 = one frame.
func std(t testing.TB) *Model {
	t.Helper()
	m, err := NewFromMoments(500, 5000, 0.9, 0.04, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{SessionRate: 0, MinHold: 1, Gamma: 1.5, Rate: 1, Ts: 1},
		{SessionRate: 1, MinHold: 0, Gamma: 1.5, Rate: 1, Ts: 1},
		{SessionRate: 1, MinHold: 1, Gamma: 1, Rate: 1, Ts: 1},
		{SessionRate: 1, MinHold: 1, Gamma: 2, Rate: 1, Ts: 1},
		{SessionRate: 1, MinHold: 1, Gamma: 1.5, Rate: 0, Ts: 1},
		{SessionRate: 1, MinHold: 1, Gamma: 1.5, Rate: 1, Ts: 0},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewFromMomentsValidation(t *testing.T) {
	if _, err := NewFromMoments(500, 400, 0.9, 0.04, 0.04); err == nil {
		t.Error("under-dispersion should error")
	}
	if _, err := NewFromMoments(500, 5000, 0.5, 0.04, 0.04); err == nil {
		t.Error("H = 0.5 should error")
	}
	if _, err := NewFromMoments(500, 5000, 1.0, 0.04, 0.04); err == nil {
		t.Error("H = 1 should error")
	}
}

func TestDerivedQuantities(t *testing.T) {
	m := std(t)
	if got := m.P.Gamma; math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("gamma = %v, want 1.2 (H = 0.9)", got)
	}
	if got := m.P.Hurst(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("Hurst = %v", got)
	}
	if got := m.Mean(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if got := m.Variance(); math.Abs(got-5000) > 1e-9 {
		t.Fatalf("variance = %v", got)
	}
	if got := m.P.Occupancy(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("occupancy = %v, want 50", got)
	}
}

func TestACFShape(t *testing.T) {
	m := std(t)
	if m.ACF(0) != 1 {
		t.Fatal("ACF(0) must be 1")
	}
	if m.ACF(-4) != m.ACF(4) {
		t.Fatal("ACF must be symmetric")
	}
	// With s0 = Ts, r(1) sits at the piecewise boundary:
	// 1 − (γ−1)/γ = 1/γ.
	if got, want := m.ACF(1), 1/m.P.Gamma; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ACF(1) = %v, want %v", got, want)
	}
	// Power-law tail: r(2k)/r(k) → 2^{1−γ}.
	want := math.Pow(2, 1-m.P.Gamma)
	for _, k := range []int{10, 100, 1000} {
		if ratio := m.ACF(2*k) / m.ACF(k); math.Abs(ratio-want) > 1e-9 {
			t.Fatalf("tail ratio at k=%d: %v, want %v", k, ratio, want)
		}
	}
	// Monotone decreasing and positive.
	prev := 1.0
	for k := 1; k < 5000; k *= 2 {
		r := m.ACF(k)
		if r <= 0 || r >= prev {
			t.Fatalf("ACF not positive-decreasing at %d", k)
		}
		prev = r
	}
}

func TestGeneratorMoments(t *testing.T) {
	m := std(t)
	var meanSum, varSum float64
	const reps = 6
	for seed := int64(1); seed <= reps; seed++ {
		xs := traffic.Generate(m.NewGenerator(seed), 60000)
		meanSum += stats.Mean(xs)
		varSum += stats.Variance(xs)
	}
	if got := meanSum / reps; math.Abs(got-500)/500 > 0.06 {
		t.Fatalf("replication mean %v, want ≈500", got)
	}
	if got := varSum / reps; got < 3000 || got > 7000 {
		t.Fatalf("replication variance %v, want ≈5000 (LRD band)", got)
	}
}

func TestGeneratorShortACF(t *testing.T) {
	m := std(t)
	xs := traffic.Generate(m.NewGenerator(11), 200000)
	acf := stats.ACF(xs, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]-m.ACF(k)) > 0.1 {
			t.Fatalf("ACF(%d) = %v, analytic %v", k, acf[k], m.ACF(k))
		}
	}
}

func TestGeneratorLRD(t *testing.T) {
	m := std(t)
	xs := traffic.Generate(m.NewGenerator(5), 250000)
	h, err := hurst.VarianceTime(xs, 20, len(xs)/30)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.7 {
		t.Fatalf("estimated H = %v; LRD signature missing", h)
	}
}

func TestGeneratorValuesAreMultiplesOfRate(t *testing.T) {
	m := std(t)
	g := m.NewGenerator(2)
	for i := 0; i < 5000; i++ {
		x := g.NextFrame()
		n := x / m.P.Rate
		if x < 0 || math.Abs(n-math.Round(n)) > 1e-9 {
			t.Fatalf("frame %v not a multiple of rate %v", x, m.P.Rate)
		}
	}
}

func TestGeneratorReproducible(t *testing.T) {
	m := std(t)
	a := traffic.Generate(m.NewGenerator(7), 200)
	b := traffic.Generate(m.NewGenerator(7), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed paths diverged")
		}
	}
}

func TestModelName(t *testing.T) {
	m := std(t)
	if m.Name() == "" {
		t.Fatal("empty name")
	}
	m.SetName("cox")
	if m.Name() != "cox" {
		t.Fatal("SetName failed")
	}
}

func BenchmarkGeneratorFrame(b *testing.B) {
	m, err := NewFromMoments(500, 5000, 0.9, 0.04, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	g := m.NewGenerator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}
