// Package cac performs connection admission control for ATM multiplexers
// of VBR video sources: given a link capacity, a delay (buffer) bound and a
// cell-loss-rate target, how many connections can be admitted?
//
// This quantifies the paper's closing observation (§5.4): differences of an
// order of magnitude in estimated loss probability translate into a
// difference of at most a connection or two in admissible load, which is
// why a DAR(1) model is good enough for real-time admission control of LRD
// video traffic.
package cac

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/traffic"
)

// Link describes the multiplexer resources.
type Link struct {
	// CellsPerSec is the link capacity in cells/sec.
	CellsPerSec float64
	// Ts is the video frame duration in seconds.
	Ts float64
	// Delay is the maximum queueing delay allowed, in seconds. The buffer
	// holds Delay × CellsPerSec cells.
	Delay float64
}

// Validate checks the link description.
func (l Link) Validate() error {
	if l.CellsPerSec <= 0 {
		return fmt.Errorf("cac: capacity %v must be positive", l.CellsPerSec)
	}
	if l.Ts <= 0 {
		return fmt.Errorf("cac: frame duration %v must be positive", l.Ts)
	}
	if l.Delay < 0 {
		return fmt.Errorf("cac: delay bound %v must be non-negative", l.Delay)
	}
	return nil
}

// LinkMs builds a Link from the units the CLIs and the admission service
// speak: capacity in cells/sec, frame duration in seconds and the delay
// bound in milliseconds. Every front end constructs links through this one
// helper so the ms→s conversion cannot drift between the batch CLI
// (cmd/admit) and the online server (internal/admitd).
func LinkMs(cellsPerSec, ts, delayMs float64) Link {
	return Link{CellsPerSec: cellsPerSec, Ts: ts, Delay: delayMs / 1000}
}

// CellsPerFrame returns the link capacity in cells/frame.
func (l Link) CellsPerFrame() float64 { return l.CellsPerSec * l.Ts }

// BufferCells returns the total buffer in cells implied by the delay bound.
func (l Link) BufferCells() float64 { return l.CellsPerSec * l.Delay }

// Estimator selects the overflow estimate used for admission.
type Estimator int

const (
	// BahadurRao uses the refined asymptotic (paper Eq. 7).
	BahadurRao Estimator = iota
	// LargeN uses exp(−N·I) only.
	LargeN
)

func (e Estimator) String() string {
	switch e {
	case BahadurRao:
		return "bahadur-rao"
	case LargeN:
		return "large-N"
	default:
		return fmt.Sprintf("estimator(%d)", int(e))
	}
}

// ParseEstimator resolves the estimator names the front ends accept
// ("br"/"bahadur-rao" and "largen"/"large-n", case-insensitive). It is the
// single name→Estimator mapping shared by cmd/admit and internal/admitd,
// so the CLI and the server cannot accept different vocabularies.
func ParseEstimator(name string) (Estimator, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "br", "bahadur-rao", "bahadurrao":
		return BahadurRao, nil
	case "largen", "large-n":
		return LargeN, nil
	default:
		return 0, fmt.Errorf("cac: unknown estimator %q (want br|bahadur-rao or largen|large-n)", name)
	}
}

// estimate evaluates the chosen overflow estimator at the operating point
// against a cached moment view, so the admission binary search shares one
// ACF lag table across all the operating points it probes.
func estimate(e Estimator, mo *traffic.Moments, op core.Operating) (float64, error) {
	switch e {
	case BahadurRao:
		return core.BahadurRaoMoments(mo, op, 0)
	case LargeN:
		return core.LargeNMoments(mo, op, 0)
	default:
		return 0, fmt.Errorf("cac: unknown estimator %d", int(e))
	}
}

// Admissible returns the largest number of homogeneous connections of
// model m the link can carry with estimated overflow probability at most
// clrTarget. It returns 0 when even a single connection misses the target.
//
// The link's capacity and buffer are shared equally: per-source bandwidth
// c = capacity/N and per-source buffer b = buffer/N, so the estimated loss
// is monotone non-decreasing in N and a binary search applies.
func Admissible(m traffic.Model, l Link, clrTarget float64, e Estimator) (int, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if clrTarget <= 0 || clrTarget >= 1 {
		return 0, fmt.Errorf("cac: loss target %v outside (0, 1)", clrTarget)
	}
	// Stability ceiling: N·μ < capacity.
	ceiling := int(l.CellsPerFrame()/m.Mean()) - 1
	if ceiling < 1 {
		return 0, nil
	}
	mo := core.Moments(m)
	meets := func(n int) (bool, error) {
		op := core.Operating{
			C: l.CellsPerFrame() / float64(n),
			B: l.BufferCells() / float64(n),
			N: n,
		}
		p, err := estimate(e, mo, op)
		if err != nil {
			return false, err
		}
		return p <= clrTarget, nil
	}
	ok1, err := meets(1)
	if err != nil {
		return 0, err
	}
	if !ok1 {
		return 0, nil
	}
	okCeil, err := meets(ceiling)
	if err != nil {
		return 0, err
	}
	if okCeil {
		return ceiling, nil
	}
	lo, hi := 1, ceiling // invariant: meets(lo), !meets(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// EffectiveBandwidth returns the smallest per-source bandwidth c (in
// cells/frame) at which N multiplexed sources of model m meet clrTarget
// with per-source buffer b. This is the operational effective-bandwidth
// notion the paper discusses: for Markov input it is nearly independent of
// N; for LRD input Eq. 6 shows it would not be, over asymptotically large
// buffers.
func EffectiveBandwidth(m traffic.Model, n int, b, clrTarget float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("cac: N = %d must be ≥ 1", n)
	}
	if b < 0 {
		return 0, fmt.Errorf("cac: buffer %v must be non-negative", b)
	}
	if clrTarget <= 0 || clrTarget >= 1 {
		return 0, fmt.Errorf("cac: loss target %v outside (0, 1)", clrTarget)
	}
	logTarget := math.Log(clrTarget)
	mo := core.Moments(m)
	f := func(c float64) float64 {
		p, err := core.BahadurRaoMoments(mo, core.Operating{C: c, B: b, N: n}, 0)
		if err != nil || p <= 0 {
			return math.Inf(-1)
		}
		return math.Log(p) - logTarget
	}
	lo := m.Mean() * (1 + 1e-9)
	// The loss estimate at c → μ approaches 1; expand hi until the target
	// is met (μ + 12σ covers any plausible target).
	hi := m.Mean() + 12*math.Sqrt(m.Variance())
	if f(hi) > 0 {
		return 0, fmt.Errorf("cac: target %v unreachable below peak-rate allocation", clrTarget)
	}
	c, err := solver.Bisect(f, lo, hi, 1e-6*m.Mean())
	if err != nil {
		return 0, fmt.Errorf("cac: effective bandwidth search: %w", err)
	}
	return c, nil
}
