package cac

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

// testLink is roughly an OC-3 payload: 155 Mbps ≈ 365566 ATM cells/s.
func testLink(delay float64) Link {
	return Link{CellsPerSec: 365566, Ts: models.Ts, Delay: delay}
}

func TestLinkValidate(t *testing.T) {
	if err := testLink(0.02).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Link{
		{CellsPerSec: 0, Ts: 0.04, Delay: 0.02},
		{CellsPerSec: 1000, Ts: 0, Delay: 0.02},
		{CellsPerSec: 1000, Ts: 0.04, Delay: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLinkDerivedQuantities(t *testing.T) {
	l := testLink(0.020)
	if got := l.CellsPerFrame(); math.Abs(got-365566*0.04) > 1e-9 {
		t.Fatalf("cells/frame = %v", got)
	}
	if got := l.BufferCells(); math.Abs(got-365566*0.02) > 1e-9 {
		t.Fatalf("buffer = %v", got)
	}
}

func TestEstimatorString(t *testing.T) {
	if BahadurRao.String() != "bahadur-rao" || LargeN.String() != "large-N" {
		t.Fatal("estimator names wrong")
	}
	if Estimator(99).String() == "" {
		t.Fatal("unknown estimator should still render")
	}
}

func TestAdmissibleBasicSanity(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Admissible(z, testLink(0.020), 1e-6, BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	// The link fits at most capacity/mean ≈ 29.2 sources at 100% load;
	// with a 1e-6 loss target the count must be positive but below that.
	if n < 5 || n > 28 {
		t.Fatalf("admissible = %d, want within (5, 28)", n)
	}
	// The admitted operating point actually meets the target; one more
	// connection does not.
	check := func(count int) float64 {
		op := core.Operating{
			C: testLink(0.020).CellsPerFrame() / float64(count),
			B: testLink(0.020).BufferCells() / float64(count),
			N: count,
		}
		p, err := core.BahadurRao(z, op, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if check(n) > 1e-6 {
		t.Fatalf("admitted N=%d violates target: %v", n, check(n))
	}
	if check(n+1) <= 1e-6 {
		t.Fatalf("N+1=%d still meets target; search stopped early", n+1)
	}
}

func TestAdmissibleMonotoneInTarget(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, target := range []float64{1e-9, 1e-6, 1e-3} {
		n, err := Admissible(z, testLink(0.020), target, BahadurRao)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("admissible count fell as target loosened: %d < %d", n, prev)
		}
		prev = n
	}
}

func TestAdmissibleMonotoneInDelay(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, d := range []float64{0.002, 0.010, 0.030} {
		n, err := Admissible(z, testLink(d), 1e-6, BahadurRao)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("admissible count fell with more buffer: %d < %d", n, prev)
		}
		prev = n
	}
}

func TestAdmissibleDARCloseToZ(t *testing.T) {
	// The paper's operational claim: a DAR(p) fit admits nearly the same
	// number of connections as the LRD model it was fit to.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	link := testLink(0.020)
	nz, err := Admissible(z, link, 1e-6, BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range models.SOrders {
		s, err := models.FitS(z, p)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := Admissible(s, link, 1e-6, BahadurRao)
		if err != nil {
			t.Fatal(err)
		}
		if diff := ns - nz; diff < -2 || diff > 2 {
			t.Errorf("DAR(%d) admits %d vs Z %d; gap too large", p, ns, nz)
		}
	}
}

func TestAdmissibleZeroWhenTargetImpossible(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// A link that cannot even fit one source's mean.
	tiny := Link{CellsPerSec: 100, Ts: models.Ts, Delay: 0}
	n, err := Admissible(z, tiny, 1e-6, BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("admissible = %d, want 0", n)
	}
}

func TestAdmissibleValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	if _, err := Admissible(z, Link{}, 1e-6, BahadurRao); err == nil {
		t.Error("invalid link should error")
	}
	if _, err := Admissible(z, testLink(0.02), 0, BahadurRao); err == nil {
		t.Error("target 0 should error")
	}
	if _, err := Admissible(z, testLink(0.02), 1, BahadurRao); err == nil {
		t.Error("target 1 should error")
	}
	if _, err := Admissible(z, testLink(0.02), 1e-6, Estimator(42)); err == nil {
		t.Error("unknown estimator should error")
	}
}

func TestLargeNAdmitsNoMoreThanBahadurRao(t *testing.T) {
	// Large-N over-estimates loss (it lacks the B-R prefactor < 1), so it
	// must be at least as conservative.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	br, err := Admissible(z, testLink(0.02), 1e-6, BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Admissible(z, testLink(0.02), 1e-6, LargeN)
	if err != nil {
		t.Fatal(err)
	}
	if ln > br {
		t.Fatalf("large-N admits %d > B-R %d", ln, br)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	c, err := EffectiveBandwidth(z, 30, 200, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if c <= z.Mean() || c >= z.Mean()+6*math.Sqrt(z.Variance()) {
		t.Fatalf("effective bandwidth %v implausible", c)
	}
	// It must actually achieve the target.
	p, err := core.BahadurRao(z, core.Operating{C: c, B: 200, N: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1.0001e-6 {
		t.Fatalf("achieved loss %v misses target", p)
	}
}

func TestEffectiveBandwidthMonotoneInBuffer(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, b := range []float64{0, 100, 400} {
		c, err := EffectiveBandwidth(z, 30, b, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if c > prev {
			t.Fatalf("effective bandwidth rose with buffer at b=%v: %v > %v", b, c, prev)
		}
		prev = c
	}
}

func TestEffectiveBandwidthValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	if _, err := EffectiveBandwidth(z, 0, 10, 1e-6); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := EffectiveBandwidth(z, 30, -1, 1e-6); err == nil {
		t.Error("negative buffer should error")
	}
	if _, err := EffectiveBandwidth(z, 30, 10, 0); err == nil {
		t.Error("target 0 should error")
	}
}

func TestParseEstimator(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Estimator
	}{
		{"br", BahadurRao},
		{"Bahadur-Rao", BahadurRao},
		{"bahadurrao", BahadurRao},
		{" largen ", LargeN},
		{"LARGE-N", LargeN},
	} {
		got, err := ParseEstimator(tc.in)
		if err != nil {
			t.Fatalf("ParseEstimator(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseEstimator(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseEstimator("monte-carlo"); err == nil {
		t.Error("unknown estimator name should error")
	}
}

func TestLinkMs(t *testing.T) {
	l := LinkMs(365566, 0.040, 20)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.Delay, 0.020; got != want {
		t.Errorf("Delay = %v, want %v", got, want)
	}
	if got, want := l.CellsPerSec, 365566.0; got != want {
		t.Errorf("CellsPerSec = %v, want %v", got, want)
	}
}
