package cac

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/traffic"
)

// MixMeetsTarget reports whether a heterogeneous mix on the link satisfies
// the loss target under the Bahadur-Rao estimate.
func MixMeetsTarget(mix core.Mix, l Link, clrTarget float64) (bool, error) {
	return MixMeetsTargetEst(mix, l, clrTarget, BahadurRao)
}

// MixMeetsTargetEst is MixMeetsTarget with an explicit overflow estimator,
// the form the admission service uses so its -estimator flag covers the
// heterogeneous path too.
func MixMeetsTargetEst(mix core.Mix, l Link, clrTarget float64, e Estimator) (bool, error) {
	if err := l.Validate(); err != nil {
		return false, err
	}
	if clrTarget <= 0 || clrTarget >= 1 {
		return false, fmt.Errorf("cac: loss target %v outside (0, 1)", clrTarget)
	}
	if mix.MeanTotal() >= l.CellsPerFrame() {
		return false, nil // unstable: cannot meet any target
	}
	var (
		p   float64
		err error
	)
	switch e {
	case BahadurRao:
		p, err = core.MixBahadurRao(mix, l.CellsPerFrame(), l.BufferCells(), 0)
	case LargeN:
		p, err = core.MixLargeN(mix, l.CellsPerFrame(), l.BufferCells(), 0)
	default:
		return false, fmt.Errorf("cac: unknown estimator %d", int(e))
	}
	if err != nil {
		return false, err
	}
	return p <= clrTarget, nil
}

// MaxAdditional answers the online admission question: given the existing
// mix already on the link, how many more connections of model m can be
// admitted while keeping the Bahadur-Rao loss estimate at or below
// clrTarget? Returns 0 when none fit (including when the existing mix
// already violates the target).
func MaxAdditional(existing core.Mix, m traffic.Model, l Link, clrTarget float64) (int, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if clrTarget <= 0 || clrTarget >= 1 {
		return 0, fmt.Errorf("cac: loss target %v outside (0, 1)", clrTarget)
	}
	if m == nil {
		return 0, fmt.Errorf("cac: nil model")
	}
	// Stability ceiling for the additional class.
	headroom := l.CellsPerFrame() - existing.MeanTotal()
	ceiling := int(headroom/m.Mean()) - 1
	if ceiling < 0 {
		ceiling = 0
	}
	meets := func(extra int) (bool, error) {
		mix := append(core.Mix{}, existing...)
		if extra > 0 {
			mix = append(mix, core.Component{Model: m, Count: extra})
		}
		if mix.TotalCount() == 0 {
			return true, nil // an idle link meets any target
		}
		return MixMeetsTarget(mix, l, clrTarget)
	}
	ok0, err := meets(0)
	if err != nil {
		return 0, err
	}
	if !ok0 || ceiling == 0 {
		return 0, nil
	}
	okCeil, err := meets(ceiling)
	if err != nil {
		return 0, err
	}
	if okCeil {
		return ceiling, nil
	}
	lo, hi := 0, ceiling // invariant: meets(lo), !meets(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
