package cac

import (
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

func TestMixMeetsTarget(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	link := testLink(0.020)
	light := core.Mix{{Model: z, Count: 5}}
	ok, err := MixMeetsTarget(light, link, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("light load should meet the target")
	}
	// Overload: more sources than the link's mean capacity.
	heavy := core.Mix{{Model: z, Count: 40}}
	ok, err = MixMeetsTarget(heavy, link, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unstable load cannot meet the target")
	}
}

func TestMixMeetsTargetValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	mix := core.Mix{{Model: z, Count: 5}}
	if _, err := MixMeetsTarget(mix, Link{}, 1e-6); err == nil {
		t.Error("bad link should error")
	}
	if _, err := MixMeetsTarget(mix, testLink(0.02), 0); err == nil {
		t.Error("target 0 should error")
	}
	if _, err := MixMeetsTarget(core.Mix{}, testLink(0.02), 1e-6); err == nil {
		t.Error("empty mix should error")
	}
}

func TestMaxAdditionalMatchesAdmissibleWhenEmpty(t *testing.T) {
	// With no existing load, MaxAdditional must agree with Admissible.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	link := testLink(0.020)
	whole, err := Admissible(z, link, 1e-6, BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := MaxAdditional(core.Mix{{Model: z, Count: 0}}, z, link, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// The two formulations share the estimate up to the per-source vs
	// total rounding of the stability ceiling.
	if diff := extra - whole; diff < -1 || diff > 1 {
		t.Fatalf("MaxAdditional %d vs Admissible %d", extra, whole)
	}
}

func TestMaxAdditionalShrinksWithExistingLoad(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	l, err := models.NewL()
	if err != nil {
		t.Fatal(err)
	}
	link := testLink(0.020)
	prev := -1
	for _, existing := range []int{0, 5, 10, 15} {
		mix := core.Mix{{Model: l, Count: existing}}
		extra, err := MaxAdditional(mix, z, link, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && extra > prev {
			t.Fatalf("admissible extras rose with load: %d after %d", extra, prev)
		}
		prev = extra
	}
	if prev != 0 && prev >= 25 {
		t.Fatalf("implausible extra count %d at 15 existing L sources", prev)
	}
}

func TestMaxAdditionalZeroWhenAlreadyViolating(t *testing.T) {
	z, _ := models.NewZ(0.99)
	link := testLink(0.002) // tight delay bound
	// Saturate close to capacity.
	mix := core.Mix{{Model: z, Count: 28}}
	extra, err := MaxAdditional(mix, z, link, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if extra != 0 {
		t.Fatalf("got %d extra connections on a violating link", extra)
	}
}

func TestMaxAdditionalValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	mix := core.Mix{{Model: z, Count: 1}}
	if _, err := MaxAdditional(mix, nil, testLink(0.02), 1e-6); err == nil {
		t.Error("nil model should error")
	}
	if _, err := MaxAdditional(mix, z, Link{}, 1e-6); err == nil {
		t.Error("bad link should error")
	}
	if _, err := MaxAdditional(mix, z, testLink(0.02), 1); err == nil {
		t.Error("target 1 should error")
	}
}

func TestMaxAdditionalInfeasibleExistingMix(t *testing.T) {
	// An existing mix that already violates the target (overbooked by
	// mean rate, i.e. unstable) must yield exactly 0 additional
	// connections and no error: "none fit" is an answer, not a failure.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	link := testLink(0.020)
	over := int(link.CellsPerFrame()/z.Mean()) + 5 // mean load past capacity
	mix := core.Mix{{Model: z, Count: over}}
	ok, err := MixMeetsTarget(mix, link, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("overbooked mix cannot meet the target")
	}
	extra, err := MaxAdditional(mix, z, link, 1e-6)
	if err != nil {
		t.Fatalf("infeasible existing mix must not error: %v", err)
	}
	if extra != 0 {
		t.Fatalf("got %d extra connections on an infeasible mix, want 0", extra)
	}
}

func TestMaxAdditionalZeroCapacityLink(t *testing.T) {
	// A zero-capacity link fails Link.Validate, so MaxAdditional reports
	// the configuration error rather than silently answering 0.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	mix := core.Mix{{Model: z, Count: 0}}
	extra, err := MaxAdditional(mix, z, Link{CellsPerSec: 0, Ts: models.Ts, Delay: 0.02}, 1e-6)
	if err == nil {
		t.Fatal("zero-capacity link should error")
	}
	if extra != 0 {
		t.Fatalf("errored call returned %d, want 0", extra)
	}
}

func TestMaxAdditionalSingleSourceExceedsCapacity(t *testing.T) {
	// A class whose single source's mean exceeds the whole link: the
	// stability ceiling is negative, clamped to 0, and the answer is
	// 0 with no error — the link is simply too small for this class.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	tiny := Link{CellsPerSec: z.Mean() / (2 * models.Ts), Ts: models.Ts, Delay: 0.02}
	if tiny.CellsPerFrame() >= z.Mean() {
		t.Fatalf("test setup: link %v cells/frame should be below the class mean %v",
			tiny.CellsPerFrame(), z.Mean())
	}
	extra, err := MaxAdditional(core.Mix{{Model: z, Count: 0}}, z, tiny, 1e-6)
	if err != nil {
		t.Fatalf("oversized class must not error: %v", err)
	}
	if extra != 0 {
		t.Fatalf("got %d connections of a class that exceeds capacity, want 0", extra)
	}
}

func TestMixMeetsTargetEst(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	link := testLink(0.020)
	mix := core.Mix{{Model: z, Count: 5}}
	br, err := MixMeetsTargetEst(mix, link, 1e-6, BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	def, err := MixMeetsTarget(mix, link, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if br != def {
		t.Fatal("MixMeetsTargetEst(BahadurRao) must agree with MixMeetsTarget")
	}
	// Large-N drops the Bahadur-Rao prefactor (< 1), so its estimate is
	// larger and it can only be more conservative, never more permissive.
	ln, err := MixMeetsTargetEst(mix, link, 1e-6, LargeN)
	if err != nil {
		t.Fatal(err)
	}
	if ln && !br {
		t.Fatal("large-N admitted a mix Bahadur-Rao rejected")
	}
	if _, err := MixMeetsTargetEst(mix, link, 1e-6, Estimator(42)); err == nil {
		t.Error("unknown estimator should error")
	}
}
