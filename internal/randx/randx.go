// Package randx provides the non-uniform random variate generators the
// traffic substrates share: Poisson (Knuth product method and Hörmann's
// PTRS transformed rejection) and Gamma (Marsaglia-Tsang), plus the
// negative binomial built from their mixture. math/rand supplies only
// uniform, normal and exponential variates; everything else is here.
package randx

import (
	"math"
	"math/rand"
)

// NewRand is the single RNG construction point for every stochastic path
// in the repository: callers derive a child seed with package seed's
// splitmix64 helpers (seed.Derive / seed.Children / seed.DeriveString) and
// hand it here. Centralising construction keeps the seeding discipline —
// hash-derived, index-addressed seeds feeding rand.NewSource — uniform
// across all traffic substrates, so no package can quietly fall back to
// additive or global-state seeding.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Poisson draws from a Poisson distribution with the given mean. Means up
// to 30 use Knuth's product method; larger means use PTRS, which is exact
// and O(1) expected time. Non-positive means yield 0.
func Poisson(r *rand.Rand, mean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return poissonKnuth(r, mean)
	default:
		return poissonPTRS(r, mean)
	}
}

func poissonKnuth(r *rand.Rand, mean float64) int64 {
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements W. Hörmann's PTRS algorithm ("The transformed
// rejection method for generating Poisson random variables", 1993).
func poissonPTRS(r *rand.Rand, mean float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int64(k)
		}
	}
}

// Gamma draws from a Gamma(shape, scale) distribution using the
// Marsaglia-Tsang squeeze method (2000), with the standard boost for
// shape < 1. The mean is shape·scale and the variance shape·scale².
func Gamma(r *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1)·U^{1/a}.
		u := 1 - r.Float64() // (0, 1]
		return Gamma(r, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := 1 - r.Float64() // (0, 1], safe for Log
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// NegativeBinomial draws from the negative binomial distribution with the
// given mean and variance (variance > mean required; returns 0 otherwise).
// It uses the Gamma-Poisson mixture: N | Λ ~ Poisson(Λ) with
// Λ ~ Gamma(r, p/(1−p)) gives NB(r, p). This is the over-dispersed
// discrete frame-size marginal of Heyman-Lakshman (paper §6.1).
func NegativeBinomial(r *rand.Rand, mean, variance float64) int64 {
	if mean <= 0 || variance <= mean {
		return 0
	}
	shape := mean * mean / (variance - mean)
	scale := (variance - mean) / mean // = mean/shape · (var-mean)/mean ... = θ with mean=shape·θ·?
	// Mixture: Poisson rate Λ ~ Gamma(shape, scale·?) chosen so
	// E[N] = E[Λ] = shape·scaleΛ = mean and
	// Var[N] = E[Λ] + Var[Λ] = mean + shape·scaleΛ² = variance.
	// From the two: scaleΛ = (variance−mean)/mean, shape = mean/scaleΛ.
	lambda := Gamma(r, shape, scale)
	return Poisson(r, lambda)
}
