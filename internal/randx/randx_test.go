package randx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func sampleMoments(n int, draw func() float64) (mean, variance float64) {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = draw()
	}
	return stats.Mean(xs), stats.Variance(xs)
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, mean := range []float64{0.5, 3, 12, 29.9, 30.1, 80, 250, 1000} {
		m, v := sampleMoments(200000, func() float64 { return float64(Poisson(rng, mean)) })
		if math.Abs(m-mean)/mean > 0.02 {
			t.Fatalf("mean(λ=%v) = %v", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.05 {
			t.Fatalf("var(λ=%v) = %v", mean, v)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -2) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(raw float64) bool {
		return Poisson(rng, math.Abs(math.Mod(raw, 5000))) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {2.5, 3}, {9, 0.5}, {50, 10},
	}
	for _, c := range cases {
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		m, v := sampleMoments(300000, func() float64 { return Gamma(rng, c.shape, c.scale) })
		if math.Abs(m-wantMean)/wantMean > 0.02 {
			t.Fatalf("Gamma(%v,%v): mean %v, want %v", c.shape, c.scale, m, wantMean)
		}
		if math.Abs(v-wantVar)/wantVar > 0.05 {
			t.Fatalf("Gamma(%v,%v): var %v, want %v", c.shape, c.scale, v, wantVar)
		}
	}
}

func TestGammaEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Gamma(rng, 0, 1) != 0 || Gamma(rng, 1, 0) != 0 || Gamma(rng, -1, 1) != 0 {
		t.Fatal("invalid parameters should yield 0")
	}
	for i := 0; i < 100000; i++ {
		if g := Gamma(rng, 0.3, 1); g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("bad small-shape sample %v", g)
		}
	}
}

func TestGammaExponentialSpecialCase(t *testing.T) {
	// Gamma(1, θ) is Exponential(θ): check the median e^{-x/θ} = 1/2.
	rng := rand.New(rand.NewSource(6))
	n, below := 200000, 0
	median := math.Ln2 * 3.0
	for i := 0; i < n; i++ {
		if Gamma(rng, 1, 3) <= median {
			below++
		}
	}
	if frac := float64(below) / float64(n); math.Abs(frac-0.5) > 0.005 {
		t.Fatalf("P(X ≤ median) = %v, want 0.5", frac)
	}
}

func TestNegativeBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ mean, variance float64 }{
		{10, 30}, {500, 5000}, {3, 4.5},
	}
	for _, c := range cases {
		m, v := sampleMoments(300000, func() float64 {
			return float64(NegativeBinomial(rng, c.mean, c.variance))
		})
		if math.Abs(m-c.mean)/c.mean > 0.02 {
			t.Fatalf("NB(%v,%v): mean %v", c.mean, c.variance, m)
		}
		if math.Abs(v-c.variance)/c.variance > 0.06 {
			t.Fatalf("NB(%v,%v): var %v", c.mean, c.variance, v)
		}
	}
}

func TestNegativeBinomialInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if NegativeBinomial(rng, 0, 10) != 0 {
		t.Fatal("mean 0 should yield 0")
	}
	if NegativeBinomial(rng, 10, 5) != 0 {
		t.Fatal("under-dispersion should yield 0")
	}
}

func TestNegativeBinomialNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(a, b float64) bool {
		mean := 1 + math.Abs(math.Mod(a, 100))
		variance := mean * (1.1 + math.Abs(math.Mod(b, 10)))
		return NegativeBinomial(rng, mean, variance) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPoisson250(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = Poisson(rng, 250)
	}
}

func BenchmarkGamma(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = Gamma(rng, 50, 10)
	}
}
