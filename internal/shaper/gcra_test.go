package shaper

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/models"
	"repro/internal/traffic"
)

func TestNewGCRAValidation(t *testing.T) {
	if _, err := NewGCRA(0, 1); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewGCRA(100, -1); err == nil {
		t.Error("negative tolerance should error")
	}
}

func TestGCRAConformingStream(t *testing.T) {
	// Cells exactly at the contract rate always conform.
	g, err := NewGCRA(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !g.Conforms(float64(i) * 0.01) {
			t.Fatalf("cell %d at contract rate rejected", i)
		}
	}
	if g.Conforming != 1000 || g.NonConforming != 0 {
		t.Fatalf("counters %d/%d", g.Conforming, g.NonConforming)
	}
}

func TestGCRARejectsSustainedOverrate(t *testing.T) {
	// Cells at twice the rate with zero tolerance: every other cell is
	// non-conforming.
	g, err := NewGCRA(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		g.Conforms(float64(i) * 0.005)
	}
	frac := float64(g.NonConforming) / 1000
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("non-conforming fraction %v, want ≈0.5", frac)
	}
}

func TestGCRAToleranceAdmitsBursts(t *testing.T) {
	// With tolerance L, a back-to-back burst of 1+⌊L/I⌋ conforms.
	g, err := NewGCRA(100, 0.05) // I = 10 ms, L = 50 ms → burst of 6
	if err != nil {
		t.Fatal(err)
	}
	if g.BurstCapacity() != 6 {
		t.Fatalf("burst capacity %d, want 6", g.BurstCapacity())
	}
	accepted := 0
	for i := 0; i < 10; i++ {
		if g.Conforms(0) { // all at t = 0
			accepted++
		}
	}
	if accepted != 6 {
		t.Fatalf("burst accepted %d cells, want 6", accepted)
	}
}

func TestGCRAReset(t *testing.T) {
	g, _ := NewGCRA(10, 0)
	g.Conforms(0)
	g.Conforms(0)
	g.Reset()
	if g.Conforming != 0 || g.NonConforming != 0 {
		t.Fatal("counters survive reset")
	}
	if !g.Conforms(0) {
		t.Fatal("first cell after reset must conform")
	}
}

// Property: the long-run conforming rate never exceeds the contract rate
// (plus the one-burst allowance), whatever the arrival pattern.
func TestGCRARateBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := NewGCRA(50, 0.1)
		if err != nil {
			return false
		}
		// Adversarial-ish arrivals: clustered bursts.
		t0 := 0.0
		r := seed
		for i := 0; i < 2000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			gap := float64(uint64(r)%100) / 5000 // 0..20 ms
			t0 += gap
			g.Conforms(t0)
		}
		if t0 == 0 {
			return true
		}
		maxConforming := 50*t0 + float64(g.BurstCapacity()) + 1
		return float64(g.Conforming) <= maxConforming
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLeakyBucketNoDelayWhenConforming(t *testing.T) {
	b, err := NewLeakyBucket(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		at := float64(i) * 0.01
		// Equality up to float accumulation in the TAT.
		if out := b.Depart(at); math.Abs(out-at) > 1e-9 {
			t.Fatalf("conforming cell delayed: %v → %v", at, out)
		}
	}
	if b.MaxDelay > 1e-9 || b.MeanDelay() > 1e-9 {
		t.Fatal("unexpected delay stats")
	}
}

func TestLeakyBucketSmoothsBurst(t *testing.T) {
	// A burst of 5 cells at t = 0 into a 100 cells/s shaper departs at
	// 0, 10, 20, 30, 40 ms.
	b, err := NewLeakyBucket(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := float64(i) * 0.01
		if got := b.Depart(0); math.Abs(got-want) > 1e-12 {
			t.Fatalf("cell %d departs %v, want %v", i, got, want)
		}
	}
	if math.Abs(b.MaxDelay-0.04) > 1e-12 {
		t.Fatalf("max delay %v, want 0.04", b.MaxDelay)
	}
	if b.MeanDelay() <= 0 {
		t.Fatal("mean delay should be positive")
	}
}

func TestLeakyBucketOutputConforms(t *testing.T) {
	// Shaper output must pass a policer with the same contract.
	b, err := NewLeakyBucket(200, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGCRA(200, 0.0201) // tiny slack for float rounding
	if err != nil {
		t.Fatal(err)
	}
	t0 := 0.0
	for i := 0; i < 5000; i++ {
		t0 += float64(i%7) / 2000
		out := b.Depart(t0)
		if !g.Conforms(out) {
			t.Fatalf("shaped cell %d at %v fails policing", i, out)
		}
	}
}

func TestNewLeakyBucketValidation(t *testing.T) {
	if _, err := NewLeakyBucket(0, 1); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewLeakyBucket(10, -1); err == nil {
		t.Error("negative tolerance should error")
	}
}

func TestPoliceFramesVideoSource(t *testing.T) {
	// Police a Z^0.9 source at its mean rate with one frame of burst
	// tolerance: a meaningful fraction of cells violates; at 1.5× mean
	// with the same tolerance almost none do.
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	frames := traffic.Generate(z.NewGenerator(3), 20000)
	tight, err := PoliceFrames(frames, models.Ts, z.Mean()/models.Ts, models.Ts)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := PoliceFrames(frames, models.Ts, 1.5*z.Mean()/models.Ts, models.Ts)
	if err != nil {
		t.Fatal(err)
	}
	if tight < 0.01 {
		t.Fatalf("policing at the mean should tag cells, got %v", tight)
	}
	if loose > tight/5 {
		t.Fatalf("1.5× contract should be far cleaner: %v vs %v", loose, tight)
	}
}

func TestPoliceFramesEdge(t *testing.T) {
	if _, err := PoliceFrames(nil, 0.04, 0, 0); err == nil {
		t.Error("zero rate should error")
	}
	frac, err := PoliceFrames([]float64{0, 0}, 0.04, 100, 0)
	if err != nil || frac != 0 {
		t.Fatalf("empty traffic: frac %v err %v", frac, err)
	}
}
