// Package shaper implements ATM usage parameter control: the Generic Cell
// Rate Algorithm (GCRA) of ITU-T I.371 / ATM Forum UNI 3.1 in its virtual
// scheduling form, plus a cell-level leaky-bucket shaper that delays
// rather than drops. The paper's multiplexers assume sources emit cells
// equispaced over each frame (deterministic smoothing); this package
// provides the policing/shaping machinery that enforces such contracts at
// a UNI, letting experiments ask how much conformance enforcement changes
// the loss picture.
//
// GCRA(I, L): a cell arriving at time t conforms iff t ≥ TAT − L, where
// TAT is the theoretical arrival time; on conformance TAT ← max(TAT, t) + I.
// I is the increment (reciprocal of the policed rate) and L the limit
// (jitter tolerance), both in seconds.
package shaper

import (
	"fmt"
	"math"
)

// GCRA is a virtual-scheduling cell rate policer. The zero value is not
// valid; use NewGCRA.
type GCRA struct {
	increment float64 // I: seconds per conforming cell
	limit     float64 // L: tolerance in seconds
	tat       float64 // theoretical arrival time
	started   bool

	Conforming    int64
	NonConforming int64
}

// NewGCRA builds a policer for the given cell rate (cells/sec) and
// tolerance τ (seconds). For peak-rate policing τ is the CDV tolerance;
// for sustainable-rate policing τ is the burst tolerance
// (MBS−1)·(1/SCR − 1/PCR).
func NewGCRA(rate, tolerance float64) (*GCRA, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("shaper: rate %v must be positive", rate)
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("shaper: tolerance %v must be non-negative", tolerance)
	}
	return &GCRA{increment: 1 / rate, limit: tolerance}, nil
}

// Conforms applies the virtual scheduling algorithm to a cell arriving at
// time t (seconds, non-decreasing across calls). It returns whether the
// cell conforms and updates the conformance counters. Non-conforming
// cells do not advance the TAT (they are assumed dropped or tagged).
func (g *GCRA) Conforms(t float64) bool {
	if !g.started {
		g.started = true
		g.tat = t + g.increment
		g.Conforming++
		return true
	}
	// The epsilon absorbs floating-point drift in the accumulated TAT so a
	// stream exactly at the contract rate is never spuriously rejected.
	if t < g.tat-g.limit-g.increment*1e-9 {
		g.NonConforming++
		return false
	}
	g.tat = math.Max(g.tat, t) + g.increment
	g.Conforming++
	return true
}

// BurstCapacity returns the maximum number of back-to-back cells (at
// infinite line rate) that conform: 1 + ⌊L/I⌋.
func (g *GCRA) BurstCapacity() int {
	return 1 + int(g.limit/g.increment)
}

// Reset clears the policer state and counters.
func (g *GCRA) Reset() {
	g.tat = 0
	g.started = false
	g.Conforming = 0
	g.NonConforming = 0
}

// LeakyBucket is a shaping (delaying) variant: instead of marking cells
// non-conforming it computes the earliest conforming departure time, so a
// source can be smoothed to contract before entering the network.
type LeakyBucket struct {
	increment float64
	limit     float64
	tat       float64
	started   bool

	// MaxDelay tracks the largest shaping delay imposed (seconds).
	MaxDelay float64
	// TotalDelay accumulates all shaping delay (seconds).
	TotalDelay float64
	// Cells counts cells shaped.
	Cells int64
}

// NewLeakyBucket builds a shaper for the given cell rate and tolerance.
func NewLeakyBucket(rate, tolerance float64) (*LeakyBucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("shaper: rate %v must be positive", rate)
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("shaper: tolerance %v must be non-negative", tolerance)
	}
	return &LeakyBucket{increment: 1 / rate, limit: tolerance}, nil
}

// Depart returns the departure time of a cell arriving at t: t itself when
// the cell conforms, otherwise the earliest conforming instant TAT − L.
// Arrival times must be non-decreasing.
func (b *LeakyBucket) Depart(t float64) float64 {
	b.Cells++
	if !b.started {
		b.started = true
		b.tat = t + b.increment
		return t
	}
	out := t
	if t < b.tat-b.limit {
		out = b.tat - b.limit
		d := out - t
		b.TotalDelay += d
		if d > b.MaxDelay {
			b.MaxDelay = d
		}
	}
	b.tat = math.Max(b.tat, out) + b.increment
	return out
}

// MeanDelay returns the average shaping delay per cell.
func (b *LeakyBucket) MeanDelay() float64 {
	if b.Cells == 0 {
		return 0
	}
	return b.TotalDelay / float64(b.Cells)
}

// PoliceFrames runs per-frame conformance of a video source against a
// sustainable cell rate contract: frame n's cells are offered equispaced
// over [nTs, (n+1)Ts) and policed by GCRA(1/scr, bt). It returns the
// fraction of cells tagged non-conforming — the contract violation rate a
// UPC function would see for this source.
func PoliceFrames(frames []float64, ts, scr, bt float64) (float64, error) {
	g, err := NewGCRA(scr, bt)
	if err != nil {
		return 0, err
	}
	var offered, dropped int64
	for n, f := range frames {
		cells := int(f)
		if cells <= 0 {
			continue
		}
		for k := 0; k < cells; k++ {
			t := (float64(n) + float64(k)/float64(cells)) * ts
			offered++
			if !g.Conforms(t) {
				dropped++
			}
		}
	}
	if offered == 0 {
		return 0, nil
	}
	return float64(dropped) / float64(offered), nil
}
