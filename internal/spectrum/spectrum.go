// Package spectrum provides the frequency-domain view of frame-size
// processes that the paper's §6.2 connects to the critical time scale: the
// power spectral density implied by a model's ACF, the periodogram of a
// sample path, and the Li-Hwang style cutoff frequency ω_c — the frequency
// below which input power no longer influences queue behaviour. The CTS
// m*_b and the cutoff frequency describe the same truncation of traffic
// detail, one in lag space and one in frequency space (Montgomery &
// De Veciana [16]).
package spectrum

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/traffic"
)

// PSD evaluates the power spectral density of model m at nfreq equally
// spaced frequencies in (0, π], by discrete cosine summation of the
// autocovariance truncated at maxLag with a Tukey (cosine-taper) window to
// suppress truncation ringing:
//
//	S(ω) = σ²·[1 + 2·Σ_{k=1..K} w_k·r(k)·cos(ωk)]
//
// Frequencies are returned in radians per frame.
func PSD(m traffic.Model, maxLag, nfreq int) (freqs, power []float64, err error) {
	if maxLag < 1 || nfreq < 1 {
		return nil, nil, fmt.Errorf("spectrum: need maxLag ≥ 1 and nfreq ≥ 1")
	}
	r := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		r[k] = m.ACF(k)
	}
	variance := m.Variance()
	freqs = make([]float64, nfreq)
	power = make([]float64, nfreq)
	for i := 0; i < nfreq; i++ {
		w := math.Pi * float64(i+1) / float64(nfreq)
		sum := 1.0
		for k := 1; k <= maxLag; k++ {
			// Cosine taper keeps the estimate non-negative in practice.
			taper := 0.5 * (1 + math.Cos(math.Pi*float64(k)/float64(maxLag+1)))
			sum += 2 * taper * r[k] * math.Cos(w*float64(k))
		}
		freqs[i] = w
		if sum < 0 {
			sum = 0
		}
		power[i] = variance * sum
	}
	return freqs, power, nil
}

// Periodogram computes the raw periodogram of a sample path:
// I(ω_j) = |Σ x_n e^{−iω_j n}|²/n at the Fourier frequencies
// ω_j = 2πj/n, j = 1..n/2. The series is zero-padded to a power of two.
func Periodogram(xs []float64) (freqs, power []float64, err error) {
	if len(xs) < 4 {
		return nil, nil, fmt.Errorf("spectrum: series too short (%d)", len(xs))
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	n := fft.NextPow2(len(xs))
	buf := make([]complex128, n)
	for i, x := range xs {
		buf[i] = complex(x-mean, 0)
	}
	if err := fft.Forward(buf); err != nil {
		return nil, nil, err
	}
	half := n / 2
	freqs = make([]float64, half)
	power = make([]float64, half)
	scale := 1 / float64(len(xs))
	for j := 1; j <= half; j++ {
		re, im := real(buf[j]), imag(buf[j])
		freqs[j-1] = 2 * math.Pi * float64(j) / float64(n)
		power[j-1] = (re*re + im*im) * scale
	}
	return freqs, power, nil
}

// CutoffFrequency returns the Li-Hwang style cutoff ω_c: the smallest
// frequency above which the fraction `fraction` of the total (one-sided)
// spectral power lies. Equivalently, power below ω_c — the slow,
// long-memory part of the input — accounts for only (1−fraction) of the
// variance that matters. For LRD models a large share of power sits at
// very low frequencies; a buffer with CTS m* responds to frequencies down
// to roughly π/m*, so ω_c shrinks as buffers grow just as m* grows.
func CutoffFrequency(m traffic.Model, maxLag int, fraction float64) (float64, error) {
	if fraction <= 0 || fraction >= 1 {
		return 0, fmt.Errorf("spectrum: fraction %v outside (0, 1)", fraction)
	}
	const nfreq = 2048
	freqs, power, err := PSD(m, maxLag, nfreq)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, p := range power {
		total += p
	}
	if total <= 0 {
		return 0, fmt.Errorf("spectrum: degenerate spectrum")
	}
	// Scan from the high-frequency end until `fraction` of power is above.
	var above float64
	for i := nfreq - 1; i >= 0; i-- {
		above += power[i]
		if above >= fraction*total {
			return freqs[i], nil
		}
	}
	return freqs[0], nil
}

// HurstFromPeriodogram estimates H from the low-frequency periodogram
// slope: for LRD, I(ω) ~ ω^{1−2H} as ω → 0, so a log-log regression over
// the lowest `lowFrac` fraction of Fourier frequencies gives
// H = (1−slope)/2 (the Geweke-Porter-Hudak style estimator).
func HurstFromPeriodogram(xs []float64, lowFrac float64) (float64, error) {
	if lowFrac <= 0 || lowFrac > 0.5 {
		return 0, fmt.Errorf("spectrum: lowFrac %v outside (0, 0.5]", lowFrac)
	}
	freqs, power, err := Periodogram(xs)
	if err != nil {
		return 0, err
	}
	nUse := int(float64(len(freqs)) * lowFrac)
	if nUse < 4 {
		return 0, fmt.Errorf("spectrum: too few low frequencies (%d)", nUse)
	}
	var sx, sy, sxx, sxy float64
	var used int
	for i := 0; i < nUse; i++ {
		if power[i] <= 0 {
			continue
		}
		x, y := math.Log(freqs[i]), math.Log(power[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		used++
	}
	if used < 4 {
		return 0, fmt.Errorf("spectrum: too few usable periodogram points")
	}
	n := float64(used)
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	return (1 - slope) / 2, nil
}
