package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dar"
	"repro/internal/fgn"
	"repro/internal/models"
	"repro/internal/traffic"
)

func dar1(t testing.TB, rho float64) traffic.Model {
	t.Helper()
	p, err := dar.NewDAR1(rho, dar.GaussianMarginal(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPSDWhiteNoiseFlat(t *testing.T) {
	m := dar1(t, 0)
	freqs, power, err := PSD(m, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 64 || len(power) != 64 {
		t.Fatal("wrong output shape")
	}
	for i, p := range power {
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("white PSD at ω=%v is %v, want 1", freqs[i], p)
		}
	}
}

func TestPSDAR1Shape(t *testing.T) {
	// Positive correlation concentrates power at low frequencies: the AR
	// spectrum σ²(1−ρ²)/(1−2ρcosω+ρ²) is monotone decreasing on (0, π).
	m := dar1(t, 0.8)
	_, power, err := PSD(m, 2000, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(power); i++ {
		if power[i] > power[i-1]*1.001 {
			t.Fatalf("AR(1) PSD not decreasing at index %d", i)
		}
	}
	// Closed-form check at ω = π: S(π) = (1−ρ)/(1+ρ)·σ².
	want := (1 - 0.8) / (1 + 0.8)
	if got := power[len(power)-1]; math.Abs(got-want)/want > 0.05 {
		t.Fatalf("S(π) = %v, want %v", got, want)
	}
}

func TestPSDValidation(t *testing.T) {
	m := dar1(t, 0.5)
	if _, _, err := PSD(m, 0, 10); err == nil {
		t.Error("maxLag 0 should error")
	}
	if _, _, err := PSD(m, 10, 0); err == nil {
		t.Error("nfreq 0 should error")
	}
}

func TestPeriodogramParseval(t *testing.T) {
	// Total periodogram power ≈ series variance (one-sided sum covers the
	// spectrum since the input is real).
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 4096)
	var sum, sum2 float64
	for i := range xs {
		xs[i] = rng.NormFloat64()
		sum += xs[i]
		sum2 += xs[i] * xs[i]
	}
	mean := sum / float64(len(xs))
	variance := sum2/float64(len(xs)) - mean*mean
	_, power, err := Periodogram(xs)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range power {
		total += p
	}
	total = total * 2 / float64(4096) // two-sided, normalised
	if math.Abs(total-variance)/variance > 0.05 {
		t.Fatalf("periodogram total %v vs variance %v", total, variance)
	}
}

func TestPeriodogramSineTone(t *testing.T) {
	// A pure tone at a Fourier frequency concentrates power in one bin.
	n := 1024
	j := 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(j*i) / float64(n))
	}
	freqs, power, err := Periodogram(xs)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range power {
		if power[i] > power[best] {
			best = i
		}
	}
	want := 2 * math.Pi * float64(j) / float64(n)
	if math.Abs(freqs[best]-want) > 1e-9 {
		t.Fatalf("peak at ω=%v, want %v", freqs[best], want)
	}
}

func TestPeriodogramTooShort(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2}); err == nil {
		t.Error("short series should error")
	}
}

func TestCutoffFrequencyOrdering(t *testing.T) {
	// Stronger correlation pushes power to lower frequencies, so the
	// cutoff containing 99% of the power sits lower.
	weak := dar1(t, 0.3)
	strong := dar1(t, 0.95)
	wc1, err := CutoffFrequency(weak, 3000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	wc2, err := CutoffFrequency(strong, 3000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if wc2 >= wc1 {
		t.Fatalf("cutoff for ρ=0.95 (%v) should be below ρ=0.3 (%v)", wc2, wc1)
	}
}

func TestCutoffFrequencyLRDBelowSRD(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := models.FitS(z, 1)
	if err != nil {
		t.Fatal(err)
	}
	wcZ, err := CutoffFrequency(z, 5000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	wcS, err := CutoffFrequency(s, 5000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if wcZ >= wcS {
		t.Fatalf("LRD cutoff %v should sit below its Markov fit's %v", wcZ, wcS)
	}
}

func TestCutoffValidation(t *testing.T) {
	m := dar1(t, 0.5)
	if _, err := CutoffFrequency(m, 100, 0); err == nil {
		t.Error("fraction 0 should error")
	}
	if _, err := CutoffFrequency(m, 100, 1); err == nil {
		t.Error("fraction 1 should error")
	}
}

func TestHurstFromPeriodogramFGN(t *testing.T) {
	m, err := fgn.NewModel(0.85, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.BlockLen = 1 << 16
	xs := traffic.Generate(m.NewGenerator(4), 1<<16)
	h, err := HurstFromPeriodogram(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.85) > 0.12 {
		t.Fatalf("estimated H = %v, want ≈0.85", h)
	}
}

func TestHurstFromPeriodogramWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1<<15)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := HurstFromPeriodogram(xs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.1 {
		t.Fatalf("white noise H = %v, want ≈0.5", h)
	}
}

func TestHurstFromPeriodogramValidation(t *testing.T) {
	xs := make([]float64, 100)
	if _, err := HurstFromPeriodogram(xs, 0); err == nil {
		t.Error("lowFrac 0 should error")
	}
	if _, err := HurstFromPeriodogram(xs, 0.9); err == nil {
		t.Error("lowFrac > 0.5 should error")
	}
	if _, err := HurstFromPeriodogram(xs[:8], 0.1); err == nil {
		t.Error("too few frequencies should error")
	}
}
