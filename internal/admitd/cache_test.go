package admitd

import (
	"fmt"
	"testing"
)

func TestDecisionCacheBasics(t *testing.T) {
	c := newDecisionCache(4)
	if _, ok := c.get("a"); ok {
		t.Error("empty cache reported a hit")
	}
	c.put("a", true)
	c.put("b", false)
	if v, ok := c.get("a"); !ok || !v {
		t.Errorf("get(a) = %v, %v", v, ok)
	}
	if v, ok := c.get("b"); !ok || v {
		t.Errorf("get(b) = %v, %v", v, ok)
	}
	if c.size() != 2 {
		t.Errorf("size = %d, want 2", c.size())
	}
	c.flush()
	if c.size() != 0 {
		t.Errorf("size after flush = %d", c.size())
	}
	if _, ok := c.get("a"); ok {
		t.Error("hit after flush")
	}
}

func TestDecisionCacheRotationBoundsGrowth(t *testing.T) {
	const max = 8
	c := newDecisionCache(max)
	for i := 0; i < 10*max; i++ {
		c.put(fmt.Sprintf("k%d", i), true)
		if c.size() > 2*max {
			t.Fatalf("size %d exceeds two generations of %d", c.size(), max)
		}
	}
	// The newest entries survived; the oldest generation was dropped.
	if _, ok := c.get(fmt.Sprintf("k%d", 10*max-1)); !ok {
		t.Error("newest entry evicted")
	}
	if _, ok := c.get("k0"); ok {
		t.Error("oldest entry survived 10 generations")
	}
}

func TestDecisionCachePromotionSurvivesRotation(t *testing.T) {
	const max = 4
	c := newDecisionCache(max)
	c.put("hot", true)
	// Fill through repeated rotations, touching "hot" each round the way
	// steady-state churn revisits the boundary states.
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < max; i++ {
			c.put(fmt.Sprintf("g%d-%d", gen, i), false)
		}
		if v, ok := c.get("hot"); !ok || !v {
			t.Fatalf("generation %d: hot entry lost (ok=%v)", gen, ok)
		}
	}
}

func TestDecisionCacheDefaultSize(t *testing.T) {
	if c := newDecisionCache(0); c.max != DefaultCacheSize {
		t.Errorf("max = %d, want DefaultCacheSize", c.max)
	}
}
