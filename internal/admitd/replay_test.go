package admitd_test

import (
	"strings"
	"testing"

	"repro/internal/admitd"
	"repro/internal/cac"
)

// TestReplayDetectsForgedOverbooking feeds ReplayEvents a journal claiming
// admissions far past capacity — the audit must refuse it. This is the
// negative control for the soak harness: if the replay passed this, its
// "zero capacity violations" verdict would be vacuous.
func TestReplayDetectsForgedOverbooking(t *testing.T) {
	events := []admitd.Event{
		{Seq: 1, Op: "admit", Class: "z:0.975", Count: 1, Granted: true},
		// smallLink fits a few dozen z:0.975 sources; 10000 is absurd.
		{Seq: 2, Op: "admit", Class: "z:0.975", Count: 10000, Granted: true},
	}
	rep, err := admitd.ReplayEvents(events, smallLink, cac.BahadurRao)
	if err == nil {
		t.Fatalf("forged journal replayed clean: %+v", rep)
	}
	if !strings.Contains(err.Error(), "capacity violation") {
		t.Errorf("error = %v, want a capacity violation", err)
	}
	if !strings.Contains(err.Error(), "event 2") {
		t.Errorf("error = %v, want the violating event named", err)
	}
}

func TestReplayMalformedJournals(t *testing.T) {
	ok := admitd.Event{Seq: 1, Op: "admit", Class: "z:0.975", Count: 1, Granted: true}
	cases := []struct {
		name   string
		events []admitd.Event
		want   string
	}{
		{"release underflow",
			[]admitd.Event{ok, {Seq: 2, Op: "release", Class: "z:0.975", Count: 2, Granted: true}},
			"only 1 admitted"},
		{"release of absent class",
			[]admitd.Event{{Seq: 1, Op: "release", Class: "z:0.975", Count: 1, Granted: true}},
			"only 0 admitted"},
		{"unknown op",
			[]admitd.Event{{Seq: 1, Op: "renege", Class: "z:0.975", Count: 1, Granted: true}},
			"unknown op"},
		{"non-positive count",
			[]admitd.Event{{Seq: 1, Op: "admit", Class: "z:0.975", Count: 0, Granted: true}},
			"count 0"},
		{"bad class spec",
			[]admitd.Event{{Seq: 1, Op: "admit", Class: "quux:9", Count: 1, Granted: true}},
			"quux"},
	}
	for _, tc := range cases {
		_, err := admitd.ReplayEvents(tc.events, smallLink, cac.BahadurRao)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// Bad link configuration fails before any event is read.
	if _, err := admitd.ReplayEvents([]admitd.Event{ok}, admitd.LinkConfig{Name: "x", CLR: 1e-6}, cac.BahadurRao); err == nil {
		t.Error("zero-capacity link accepted")
	}
}

func TestReplaySkipsDeniedAndDedupesStates(t *testing.T) {
	// Admit/release churn that revisits the same state: 1 → 0 → 1 → 0.
	// Two denied attempts ride along and must not contribute state.
	events := []admitd.Event{
		{Seq: 1, Op: "admit", Class: "z:0.975", Count: 1, Granted: true},
		{Seq: 2, Op: "admit", Class: "z:0.975", Count: 9999, Granted: false},
		{Seq: 3, Op: "release", Class: "z:0.975", Count: 1, Granted: true},
		{Seq: 4, Op: "admit", Class: "z:0.975", Count: 1, Granted: true},
		{Seq: 5, Op: "admit", Class: "z:0.975", Count: 9999, Granted: false},
		{Seq: 6, Op: "release", Class: "z:0.975", Count: 1, Granted: true},
	}
	rep, err := admitd.ReplayEvents(events, smallLink, cac.BahadurRao)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Events != 6 || rep.Admits != 2 || rep.Releases != 2 {
		t.Errorf("replay counts = %+v", rep)
	}
	if rep.States != 1 {
		t.Errorf("States = %d, want 1 (the z*1 state, visited twice, verified once)", rep.States)
	}
	if rep.FinalActive != 0 {
		t.Errorf("FinalActive = %d, want 0", rep.FinalActive)
	}
}

// TestReplayMatchesLiveJournal drives a live server and checks the replay
// agrees with what the server did — the round-trip the soak harness relies
// on.
func TestReplayMatchesLiveJournal(t *testing.T) {
	srv := newTestServer(t, true, smallLink)
	var admitted int
	for i := 0; i < 50; i++ {
		resp, err := srv.Admit(admitd.AdmitRequest{Link: "small", Class: zClass})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Admitted {
			admitted++
		}
	}
	for i := 0; i < admitted/2; i++ {
		if _, err := srv.Release(admitd.ReleaseRequest{Link: "small", Class: zClass}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := srv.ReplayJournal("small")
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Events != 50+admitted/2 {
		t.Errorf("Events = %d, want %d", rep.Events, 50+admitted/2)
	}
	if rep.Admits != admitted || rep.Releases != admitted/2 {
		t.Errorf("replay = %+v, want %d admits / %d releases", rep, admitted, admitted/2)
	}
	if want := admitted - admitted/2; rep.FinalActive != want {
		t.Errorf("FinalActive = %d, want %d", rep.FinalActive, want)
	}
	if st := srv.Links()[0]; st.Active != rep.FinalActive {
		t.Errorf("live state %d != replay state %d", st.Active, rep.FinalActive)
	}
}
