package admitd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cac"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// classCount is one class's admitted population on a link. The counts
// slice is kept sorted by class spec, so the mix, its signature and the
// journal replay are all deterministic — no map iteration anywhere on the
// decision path.
type classCount struct {
	cls *class
	n   int
}

// linkState is the per-link admission state. Every decision — feasibility
// evaluation plus the mutation it authorises — runs under mu, which is
// what makes two racing admits unable to both land past capacity: the
// second one re-evaluates against the state the first one left behind.
type linkState struct {
	cfg  LinkConfig
	link cac.Link
	est  cac.Estimator

	mu        sync.Mutex
	counts    []classCount
	sig       string // canonical signature of counts (maintained on change)
	total     int    // Σ counts
	mean      float64
	cache     *decisionCache
	journal   []Event
	journalOn bool
	seq       uint64

	decAdmitted, decRejected, decErrors *telemetry.Counter
	relOK, relErrors                    *telemetry.Counter
	cacheHit, cacheMiss                 *telemetry.Counter
	decTimer                            *telemetry.Timer
	activeGauge, meanGauge              *telemetry.Gauge
	journalGauge                        *telemetry.Gauge
}

// Event is one journal entry: an admit or release attempt and whether it
// was granted. Replaying the granted events reconstructs every state the
// link ever occupied.
type Event struct {
	Seq     uint64 `json:"seq"`
	Op      string `json:"op"` // "admit" or "release"
	Class   string `json:"class"`
	Count   int    `json:"count"`
	Granted bool   `json:"granted"`
}

func newLinkState(lc LinkConfig, link cac.Link, cfg Config, reg *telemetry.Registry) *linkState {
	l := telemetry.L("link", lc.Name)
	outcome := func(name, o string) *telemetry.Counter {
		return reg.Counter(name, l, telemetry.L("outcome", o))
	}
	return &linkState{
		cfg:          lc,
		link:         link,
		est:          cfg.Estimator,
		cache:        newDecisionCache(cfg.CacheSize),
		journalOn:    cfg.Journal,
		decAdmitted:  outcome("admitd_decisions_total", "admitted"),
		decRejected:  outcome("admitd_decisions_total", "rejected"),
		decErrors:    outcome("admitd_decisions_total", "error"),
		relOK:        outcome("admitd_releases_total", "released"),
		relErrors:    outcome("admitd_releases_total", "error"),
		cacheHit:     reg.Counter("admitd_cache_total", l, telemetry.L("result", "hit")),
		cacheMiss:    reg.Counter("admitd_cache_total", l, telemetry.L("result", "miss")),
		decTimer:     reg.Timer("admitd_decision_seconds", l),
		activeGauge:  reg.Gauge("admitd_active_sources", l),
		meanGauge:    reg.Gauge("admitd_mean_load_cells", l),
		journalGauge: reg.Gauge("admitd_journal_depth", l),
	}
}

// AdmitRequest asks to admit Count more sources of Class onto Link. The
// link's configured QoS is always enforced; DelayMs/CLR, when set, add a
// second (typically tighter) per-request QoS that must also hold.
type AdmitRequest struct {
	Link  string `json:"link"`
	Class string `json:"class"`
	// Count defaults to 1.
	Count int `json:"count,omitempty"`
	// DelayMs optionally overrides the queueing-delay bound for this
	// request's feasibility check (the link contract is still enforced).
	DelayMs float64 `json:"delay_ms,omitempty"`
	// CLR optionally adds a per-request loss target.
	CLR float64 `json:"clr,omitempty"`
	// DryRun evaluates the decision without mutating link state.
	DryRun bool `json:"dry_run,omitempty"`
}

// AdmitResponse reports the decision and the resulting link state.
type AdmitResponse struct {
	Admitted    bool    `json:"admitted"`
	Reason      string  `json:"reason,omitempty"`
	Link        string  `json:"link"`
	Class       string  `json:"class"`
	Count       int     `json:"count"`
	Active      int     `json:"active_sources"`
	MeanLoad    float64 `json:"mean_load_cells_per_frame"`
	Utilization float64 `json:"utilization"`
	CacheHit    bool    `json:"cache_hit"`
	Seq         uint64  `json:"seq,omitempty"`
}

// ReleaseRequest tears down Count sources of Class on Link.
type ReleaseRequest struct {
	Link  string `json:"link"`
	Class string `json:"class"`
	Count int    `json:"count,omitempty"` // defaults to 1
}

// ReleaseResponse reports the resulting link state.
type ReleaseResponse struct {
	Link     string  `json:"link"`
	Class    string  `json:"class"`
	Count    int     `json:"count"`
	Active   int     `json:"active_sources"`
	MeanLoad float64 `json:"mean_load_cells_per_frame"`
	Seq      uint64  `json:"seq,omitempty"`
}

// LinkStatus is the query view of one link.
type LinkStatus struct {
	Name        string       `json:"name"`
	CellsPerSec float64      `json:"cells_per_sec"`
	DelayMs     float64      `json:"delay_ms"`
	CLR         float64      `json:"clr"`
	Active      int          `json:"active_sources"`
	MeanLoad    float64      `json:"mean_load_cells_per_frame"`
	Utilization float64      `json:"utilization"`
	Signature   string       `json:"signature,omitempty"`
	Classes     []ClassCount `json:"classes,omitempty"`
}

// ClassCount is one class's population in a LinkStatus.
type ClassCount struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

// Admit runs one admission decision. The feasibility evaluation and the
// state mutation are atomic under the link lock.
func (s *Server) Admit(req AdmitRequest) (AdmitResponse, error) {
	st, err := s.linkByName(req.Link)
	if err != nil {
		return AdmitResponse{}, err
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < 0 {
		return AdmitResponse{}, fmt.Errorf("admitd: admit count %d must be positive", count)
	}
	cls, err := s.resolveClass(req.Class)
	if err != nil {
		st.decErrors.Inc()
		return AdmitResponse{}, err
	}
	var reqLink cac.Link
	reqCLR := req.CLR
	hasQoS := req.DelayMs > 0 || reqCLR > 0
	if hasQoS {
		delay := req.DelayMs
		if delay <= 0 {
			delay = st.cfg.DelayMs
		}
		if reqCLR <= 0 {
			reqCLR = st.cfg.CLR
		}
		if reqCLR >= 1 {
			st.decErrors.Inc()
			return AdmitResponse{}, fmt.Errorf("admitd: request CLR %v outside (0, 1)", reqCLR)
		}
		reqLink = cac.LinkMs(st.cfg.CellsPerSec, st.link.Ts, delay)
	}

	stop := st.decTimer.Start()
	st.mu.Lock()
	feasible, hit, err := st.decide(cls, count, hasQoS, reqLink, reqCLR)
	if err != nil {
		st.mu.Unlock()
		stop()
		st.decErrors.Inc()
		return AdmitResponse{}, err
	}
	var seq uint64
	if feasible && !req.DryRun {
		st.apply(cls, count)
	}
	if !req.DryRun {
		st.seq++
		seq = st.seq
		if st.journalOn {
			st.journal = append(st.journal, Event{
				Seq: seq, Op: "admit", Class: cls.spec, Count: count, Granted: feasible,
			})
			st.journalGauge.Set(float64(len(st.journal)))
		}
	}
	resp := AdmitResponse{
		Admitted:    feasible,
		Link:        req.Link,
		Class:       cls.spec,
		Count:       count,
		Active:      st.total,
		MeanLoad:    st.mean,
		Utilization: st.mean / st.link.CellsPerFrame(),
		CacheHit:    hit,
		Seq:         seq,
	}
	st.mu.Unlock()
	stop()
	if feasible {
		if !req.DryRun {
			st.decAdmitted.Inc()
		}
	} else {
		resp.Reason = "infeasible: admitting would violate the QoS target"
		if !req.DryRun {
			st.decRejected.Inc()
		}
	}
	return resp, nil
}

// decide evaluates feasibility of adding count sources of cls, consulting
// the decision cache first. Caller holds st.mu.
func (st *linkState) decide(cls *class, count int, hasQoS bool, reqLink cac.Link, reqCLR float64) (feasible, cacheHit bool, err error) {
	key := st.cacheKey(cls, count, hasQoS, reqLink, reqCLR)
	if v, ok := st.cache.get(key); ok {
		st.cacheHit.Inc()
		return v, true, nil
	}
	st.cacheMiss.Inc()
	mix := st.candidateMix(cls, count)
	feasible, err = cac.MixMeetsTargetEst(mix, st.link, st.cfg.CLR, st.est)
	if err != nil {
		return false, false, err
	}
	if feasible && hasQoS {
		feasible, err = cac.MixMeetsTargetEst(mix, reqLink, reqCLR, st.est)
		if err != nil {
			return false, false, err
		}
	}
	st.cache.put(key, feasible)
	return feasible, false, nil
}

// cacheKey builds the decision-cache key. The mix signature is the first
// component, so entries for superseded mixes become unreachable the moment
// the mix changes — the cache can never serve a decision computed against
// stale state.
func (st *linkState) cacheKey(cls *class, count int, hasQoS bool, reqLink cac.Link, reqCLR float64) string {
	var b strings.Builder
	b.Grow(len(st.sig) + len(cls.spec) + 32)
	b.WriteString(st.sig)
	b.WriteByte(0xff)
	b.WriteString(cls.spec)
	b.WriteByte(0xff)
	b.WriteString(strconv.Itoa(count))
	if hasQoS {
		b.WriteByte(0xff)
		b.WriteString(strconv.FormatFloat(reqLink.Delay, 'g', -1, 64))
		b.WriteByte(0xff)
		b.WriteString(strconv.FormatFloat(reqCLR, 'g', -1, 64))
	}
	return b.String()
}

// candidateMix builds existing + count×cls as a core.Mix. Caller holds
// st.mu. The slice is freshly allocated: it escapes into the cac call
// tree, and decisions are rare enough (µs-scale each) that pooling would
// buy nothing measurable.
func (st *linkState) candidateMix(cls *class, count int) core.Mix {
	mix := make(core.Mix, 0, len(st.counts)+1)
	merged := false
	for _, cc := range st.counts {
		n := cc.n
		if cc.cls == cls {
			n += count
			merged = true
		}
		mix = append(mix, core.Component{Model: cc.cls.mo, Count: n})
	}
	if !merged {
		mix = append(mix, core.Component{Model: cls.mo, Count: count})
	}
	return mix
}

// apply commits an admission. Caller holds st.mu.
func (st *linkState) apply(cls *class, count int) {
	idx := -1
	for i, cc := range st.counts {
		if cc.cls == cls {
			idx = i
			break
		}
	}
	if idx >= 0 {
		st.counts[idx].n += count
	} else {
		st.counts = append(st.counts, classCount{cls: cls, n: count})
		sortCounts(st.counts)
	}
	st.total += count
	st.mean += float64(count) * cls.mo.Mean()
	st.refreshDerived()
}

// Release tears down sources. It fails (without mutating) when the class
// has fewer admitted sources than requested.
func (s *Server) Release(req ReleaseRequest) (ReleaseResponse, error) {
	st, err := s.linkByName(req.Link)
	if err != nil {
		return ReleaseResponse{}, err
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < 0 {
		return ReleaseResponse{}, fmt.Errorf("admitd: release count %d must be positive", count)
	}
	spec := CanonicalSpec(req.Class)
	st.mu.Lock()
	idx := -1
	for i, cc := range st.counts {
		if cc.cls.spec == spec {
			idx = i
			break
		}
	}
	if idx < 0 || st.counts[idx].n < count {
		have := 0
		if idx >= 0 {
			have = st.counts[idx].n
		}
		st.mu.Unlock()
		st.relErrors.Inc()
		return ReleaseResponse{}, fmt.Errorf("admitd: link %q has %d sources of class %q, cannot release %d",
			req.Link, have, spec, count)
	}
	cls := st.counts[idx].cls
	st.counts[idx].n -= count
	if st.counts[idx].n == 0 {
		st.counts = append(st.counts[:idx], st.counts[idx+1:]...)
	}
	st.total -= count
	st.mean -= float64(count) * cls.mo.Mean()
	st.refreshDerived()
	st.seq++
	seq := st.seq
	if st.journalOn {
		st.journal = append(st.journal, Event{
			Seq: seq, Op: "release", Class: spec, Count: count, Granted: true,
		})
		st.journalGauge.Set(float64(len(st.journal)))
	}
	resp := ReleaseResponse{
		Link:     req.Link,
		Class:    spec,
		Count:    count,
		Active:   st.total,
		MeanLoad: st.mean,
		Seq:      seq,
	}
	st.mu.Unlock()
	st.relOK.Inc()
	return resp, nil
}

// refreshDerived recomputes the signature and gauges after a counts
// change. Caller holds st.mu.
func (st *linkState) refreshDerived() {
	st.sig = signature(st.counts)
	st.activeGauge.Set(float64(st.total))
	st.meanGauge.Set(st.mean)
}

func sortCounts(counts []classCount) {
	for i := 1; i < len(counts); i++ { // insertion sort: counts stay tiny and nearly sorted
		for j := i; j > 0 && counts[j].cls.spec < counts[j-1].cls.spec; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
}

// signature renders a counts slice as the canonical mix signature, e.g.
// "dar:0.975:1*3,z:0.975*12". Counts are sorted by spec, so equal mixes
// always produce equal signatures.
func signature(counts []classCount) string {
	var b strings.Builder
	for i, cc := range counts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(cc.cls.spec)
		b.WriteByte('*')
		b.WriteString(strconv.Itoa(cc.n))
	}
	return b.String()
}

// MixSignature renders (class spec, count) pairs as the canonical mix
// signature used by the decision cache, normalising specs and sorting.
// Exported for the benchmark suite and for external cache-key debugging.
func MixSignature(classes []ClassCount) string {
	cs := make([]ClassCount, len(classes))
	for i, c := range classes {
		cs[i] = ClassCount{Class: CanonicalSpec(c.Class), Count: c.Count}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Class < cs[j].Class })
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Class)
		b.WriteByte('*')
		b.WriteString(strconv.Itoa(c.Count))
	}
	return b.String()
}

// status snapshots the link under its lock.
func (st *linkState) status() LinkStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	classes := make([]ClassCount, 0, len(st.counts))
	for _, cc := range st.counts {
		classes = append(classes, ClassCount{Class: cc.cls.spec, Count: cc.n})
	}
	return LinkStatus{
		Name:        st.cfg.Name,
		CellsPerSec: st.cfg.CellsPerSec,
		DelayMs:     st.cfg.DelayMs,
		CLR:         st.cfg.CLR,
		Active:      st.total,
		MeanLoad:    st.mean,
		Utilization: st.mean / st.link.CellsPerFrame(),
		Signature:   st.sig,
		Classes:     classes,
	}
}

// Journal returns a copy of the link's journal (empty unless the server
// was configured with Journal: true).
func (s *Server) Journal(link string) ([]Event, error) {
	st, err := s.linkByName(link)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]Event(nil), st.journal...), nil
}

// DecisionStats reads the decision-latency quantiles for a link from the
// registry. Used by tests and the soak harness; snapshot-rate only.
func (s *Server) DecisionStats(link string) (telemetry.HistStats, error) {
	if _, err := s.linkByName(link); err != nil {
		return telemetry.HistStats{}, err
	}
	// The timer handle is private to telemetry; go through a snapshot.
	for _, snap := range s.reg.Snapshot() {
		if snap.Name == "admitd_decision_seconds" && snap.Labels["link"] == link {
			return telemetry.HistStats{
				Count: snap.Count, Sum: snap.Sum, Min: snap.Min, Max: snap.Max,
				P50: snap.P50, P95: snap.P95, P99: snap.P99, NonFinite: snap.NonFinite,
			}, nil
		}
	}
	return telemetry.HistStats{}, nil
}
