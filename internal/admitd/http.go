package admitd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cac"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// Handler returns the service API plus the telemetry exposition surface:
//
//	POST /v1/admit     admission decision (AdmitRequest → AdmitResponse)
//	POST /v1/release   tear-down (ReleaseRequest → ReleaseResponse)
//	GET  /v1/links     per-link status (mix, utilization, signature)
//	POST /v1/quote     effective-bandwidth quote (QuoteRequest → QuoteResponse)
//	GET  /v1/quote     same, via query parameters (link, class, n, delay_ms, clr)
//	GET  /healthz      liveness probe ({"status":"ok"}; smoke jobs poll this)
//	GET  /metrics      Prometheus text exposition of the server registry
//	GET  /vars         JSON metric snapshots + runtime stats
//	GET  /vars/history flight-recorder ring buffer (when Config.History is set)
//	GET  /debug/pprof/ live profiles
//
// Every /v1 endpoint is wrapped with a latency timer and a request counter
// labeled by endpoint and status code, so the registry carries p50/p95/p99
// per endpoint next to the per-link decision histograms.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admit", s.wrap("admit", s.handleAdmit))
	mux.HandleFunc("POST /v1/release", s.wrap("release", s.handleRelease))
	mux.HandleFunc("GET /v1/links", s.wrap("links", s.handleLinks))
	mux.HandleFunc("POST /v1/quote", s.wrap("quote", s.handleQuote))
	mux.HandleFunc("GET /v1/quote", s.wrap("quote", s.handleQuoteGet))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	tele := telemetry.Handler(s.reg)
	mux.Handle("/metrics", tele)
	mux.Handle("/vars", tele)
	mux.Handle("/debug/pprof/", tele)
	if s.cfg.History != nil {
		mux.Handle("GET /vars/history", s.cfg.History)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			jsonError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %q", r.URL.Path))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "admitd endpoints:\n  POST /v1/admit\n  POST /v1/release\n  GET /v1/links\n  GET|POST /v1/quote\n  GET /healthz\n  /metrics /vars /vars/history /debug/pprof/\n")
	})
	return mux
}

// handleHealthz is the liveness probe: a cheap 200 that proves the HTTP
// stack is serving, with the link count so probes can assert readiness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	links := len(s.links)
	s.mu.RUnlock()
	writeJSON(w, map[string]any{"status": "ok", "links": links})
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap times the handler and counts (endpoint, code).
func (s *Server) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		stop := s.reqTimer(endpoint).Start()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		stop()
		s.reqCount(endpoint, strconv.Itoa(sw.code)).Inc()
	}
}

// jsonError writes {"error": ...} with the given status.
func jsonError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// errStatus maps service errors onto HTTP statuses: unknown names are 404,
// everything else from the request side is a 400.
func errStatus(err error) int {
	if strings.Contains(err.Error(), "unknown link") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("admitd: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Admit(req)
	if err != nil {
		jsonError(w, errStatus(err), err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Release(req)
	if err != nil {
		jsonError(w, errStatus(err), err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"links": s.Links()})
}

// QuoteRequest asks for an effective-bandwidth quote: the per-source
// bandwidth N sources of Class would need on Link to meet the QoS, plus
// how many more sources of the class fit right now.
type QuoteRequest struct {
	Link  string `json:"link"`
	Class string `json:"class"`
	// N is the homogeneous population to quote for; 0 means "the current
	// total plus one", the marginal-call question.
	N int `json:"n,omitempty"`
	// DelayMs / CLR override the link QoS for the quote only.
	DelayMs float64 `json:"delay_ms,omitempty"`
	CLR     float64 `json:"clr,omitempty"`
}

// QuoteResponse is the quote. EffBandwidth* are the paper's operational
// effective bandwidth (§5.4) for N homogeneous sources of the class
// sharing the link's buffer; MaxAdditional answers the online question
// against the mix admitted at quote time.
type QuoteResponse struct {
	Link                      string  `json:"link"`
	Class                     string  `json:"class"`
	N                         int     `json:"n"`
	EffBandwidthCellsPerFrame float64 `json:"eff_bw_cells_per_frame,omitempty"`
	EffBandwidthCellsPerSec   float64 `json:"eff_bw_cells_per_sec,omitempty"`
	EffBandwidthError         string  `json:"eff_bw_error,omitempty"`
	MeanCellsPerFrame         float64 `json:"mean_cells_per_frame"`
	HeadroomPct               float64 `json:"headroom_pct,omitempty"`
	MaxAdditional             int     `json:"max_additional"`
	Active                    int     `json:"active_sources"`
}

// Quote computes a QuoteResponse. The MaxAdditional search runs on a
// snapshot of the admitted mix outside the link lock: quotes are advisory
// and must not serialize against the decision path.
func (s *Server) Quote(req QuoteRequest) (QuoteResponse, error) {
	st, err := s.linkByName(req.Link)
	if err != nil {
		return QuoteResponse{}, err
	}
	cls, err := s.resolveClass(req.Class)
	if err != nil {
		return QuoteResponse{}, err
	}
	delay := req.DelayMs
	if delay <= 0 {
		delay = st.cfg.DelayMs
	}
	clr := req.CLR
	if clr <= 0 {
		clr = st.cfg.CLR
	}
	if clr >= 1 {
		return QuoteResponse{}, fmt.Errorf("admitd: quote CLR %v outside (0, 1)", clr)
	}
	link := cac.LinkMs(st.cfg.CellsPerSec, st.link.Ts, delay)

	st.mu.Lock()
	existing := make(core.Mix, 0, len(st.counts))
	for _, cc := range st.counts {
		existing = append(existing, core.Component{Model: cc.cls.mo, Count: cc.n})
	}
	active := st.total
	st.mu.Unlock()

	n := req.N
	if n <= 0 {
		n = active + 1
	}
	resp := QuoteResponse{
		Link:              req.Link,
		Class:             cls.spec,
		N:                 n,
		MeanCellsPerFrame: cls.mo.Mean(),
		Active:            active,
	}
	ebw, err := cac.EffectiveBandwidth(cls.mo, n, link.BufferCells()/float64(n), clr)
	if err != nil {
		resp.EffBandwidthError = err.Error()
	} else {
		resp.EffBandwidthCellsPerFrame = ebw
		resp.EffBandwidthCellsPerSec = ebw / link.Ts
		resp.HeadroomPct = (ebw/cls.mo.Mean() - 1) * 100
	}
	extra, err := cac.MaxAdditional(existing, cls.mo, link, clr)
	if err != nil {
		return resp, err
	}
	resp.MaxAdditional = extra
	return resp, nil
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	var req QuoteRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	s.serveQuote(w, req)
}

func (s *Server) handleQuoteGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := QuoteRequest{Link: q.Get("link"), Class: q.Get("class")}
	for _, f := range []struct {
		key string
		dst *float64
	}{{"delay_ms", &req.DelayMs}, {"clr", &req.CLR}} {
		if v := q.Get(f.key); v != "" {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				jsonError(w, http.StatusBadRequest, fmt.Errorf("admitd: bad %s %q", f.key, v))
				return
			}
			*f.dst = x
		}
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("admitd: bad n %q", v))
			return
		}
		req.N = n
	}
	s.serveQuote(w, req)
}

func (s *Server) serveQuote(w http.ResponseWriter, req QuoteRequest) {
	resp, err := s.Quote(req)
	if err != nil {
		jsonError(w, errStatus(err), err)
		return
	}
	writeJSON(w, resp)
}

// Start binds addr (e.g. ":8080" or "127.0.0.1:0" for an ephemeral port)
// and serves the Handler in a background goroutine, returning the bound
// address. Stop with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.httpSrv != nil {
		return "", fmt.Errorf("admitd: server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("admitd: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	s.httpSrv, s.httpDone = srv, done
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			telemetry.Log.Errorf("admitd: serve: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown gracefully drains the HTTP server: the listener closes
// immediately, in-flight requests run to completion (bounded by ctx), and
// the serve goroutine is reaped before Shutdown returns — so a caller
// that runs a leak check after Shutdown sees no straggler.
func (s *Server) Shutdown(ctx context.Context) error {
	s.httpMu.Lock()
	srv, done := s.httpSrv, s.httpDone
	s.httpSrv, s.httpDone = nil, nil
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
