// Package admitd is the online admission-control service: a long-running
// server that answers "can I admit one more source of class X at QoS
// (delay b, CLR ε)?" for heterogeneous mixes of VBR video sources, built
// directly on the batch machinery in internal/cac and internal/core.
//
// The paper's closing argument (§5.4) is that cheap Markov-fit models
// capture everything that matters for connection admission control, so CAC
// can run online, per call, at switch speed. This package operationalises
// that claim: per-link admission state with serialized admit/release (two
// racing requests can never both be admitted past capacity), a decision
// cache keyed by the canonical mix signature so repeated decisions against
// an unchanged mix are O(1) map lookups, an HTTP/JSON API served alongside
// the telemetry exposition endpoints, and an append-only admit/release
// journal that replays through batch cac.MixMeetsTarget to prove every
// admitted state was feasible.
//
// Concurrency model: the server-level link table is guarded by an RWMutex
// and is read-mostly after startup. Each link carries its own mutex;
// admission decisions — feasibility evaluation and the state mutation they
// authorise — happen atomically under that lock, which is the correctness
// anchor of the whole service. Decisions are microsecond-scale (the moment
// caches make each feasibility check an O(classes) scan over memoised ACF
// prefix sums), so per-link serialization sustains tens of thousands of
// decisions per second; scale across links, not within one.
package admitd

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/cac"
	"repro/internal/models"
	"repro/internal/modelspec"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// DefaultCacheSize bounds each link's decision cache (two generations of
// at most this many entries each). Session churn revisits the same
// neighbourhood of the counts lattice constantly, so a few thousand
// entries cover the working set near the admission boundary.
const DefaultCacheSize = 8192

// Config parameterises a Server.
type Config struct {
	// Estimator selects the overflow estimate backing every decision.
	// The zero value is cac.BahadurRao, the paper's refined asymptotic.
	Estimator cac.Estimator
	// Registry receives the service metrics; nil uses a private registry
	// (read it back via Server.Registry).
	Registry *telemetry.Registry
	// Journal enables the per-link append-only admit/release journal used
	// by the soak harness to replay every admitted state through batch
	// feasibility checks. Off by default: the journal grows without bound.
	Journal bool
	// CacheSize overrides DefaultCacheSize when positive.
	CacheSize int
	// History, when non-nil, is mounted at /vars/history on the HTTP API —
	// the flight recorder's ring-buffer handler, wired by cmd/admitd when
	// -flight is on.
	History http.Handler
}

// Server is the admission-control service state: a set of links, a class
// registry resolving model specs to cached moment views, and the metric
// instruments. Create with NewServer; all methods are safe for concurrent
// use.
type Server struct {
	cfg Config
	reg *telemetry.Registry

	mu    sync.RWMutex
	links map[string]*linkState

	classMu sync.RWMutex
	classes map[string]*class

	httpMu   sync.Mutex
	httpSrv  *http.Server
	httpDone chan struct{}

	reqCount func(endpoint, code string) *telemetry.Counter
	reqTimer func(endpoint string) *telemetry.Timer
}

// class is one resolved traffic class: the canonical spec string and the
// shared cached second-order view of its model. One Moments per spec per
// server means every decision against the class reuses one memoised ACF
// prefix-sum table.
type class struct {
	spec string
	mo   *traffic.Moments
}

// NewServer builds an empty server; add links with AddLink.
func NewServer(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		links:   make(map[string]*linkState),
		classes: make(map[string]*class),
	}
	s.reqCount = func(endpoint, code string) *telemetry.Counter {
		return reg.Counter("admitd_http_requests_total",
			telemetry.L("endpoint", endpoint), telemetry.L("code", code))
	}
	s.reqTimer = func(endpoint string) *telemetry.Timer {
		return reg.Timer("admitd_http_seconds", telemetry.L("endpoint", endpoint))
	}
	return s
}

// Registry returns the registry holding the service metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Estimator returns the configured overflow estimator.
func (s *Server) Estimator() cac.Estimator { return s.cfg.Estimator }

// CanonicalSpec normalises a class spec for use as a registry key and
// signature component: lowercased, surrounding space trimmed.
func CanonicalSpec(spec string) string {
	return strings.ToLower(strings.TrimSpace(spec))
}

// resolveClass returns the class for a model spec, parsing and caching it
// on first use.
func (s *Server) resolveClass(spec string) (*class, error) {
	key := CanonicalSpec(spec)
	if key == "" {
		return nil, fmt.Errorf("admitd: empty class spec")
	}
	s.classMu.RLock()
	c, ok := s.classes[key]
	s.classMu.RUnlock()
	if ok {
		return c, nil
	}
	m, err := modelspec.Parse(key)
	if err != nil {
		return nil, err
	}
	s.classMu.Lock()
	defer s.classMu.Unlock()
	if c, ok = s.classes[key]; ok { // lost a parse race; keep the winner
		return c, nil
	}
	c = &class{spec: key, mo: traffic.NewMoments(m)}
	s.classes[key] = c
	return c, nil
}

// LinkConfig describes one link to AddLink and ParseLinkSpec.
type LinkConfig struct {
	// Name identifies the link in requests and metrics labels.
	Name string `json:"name"`
	// CellsPerSec is the link capacity.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Ts is the video frame duration in seconds; 0 selects the standard
	// 25 frames/s (models.Ts) shared by every model in the repository.
	Ts float64 `json:"ts,omitempty"`
	// DelayMs is the queueing-delay bound in milliseconds (sizes the
	// buffer, exactly as in cmd/admit).
	DelayMs float64 `json:"delay_ms"`
	// CLR is the cell-loss-rate target of the link's service contract.
	CLR float64 `json:"clr"`
}

// AddLink registers a link. The link's (DelayMs, CLR) pair is its service
// contract: every admission decision enforces it, so the admitted mix can
// never violate it regardless of per-request QoS overrides.
func (s *Server) AddLink(lc LinkConfig) error {
	if lc.Name == "" {
		return fmt.Errorf("admitd: link needs a name")
	}
	if lc.Ts <= 0 {
		lc.Ts = models.Ts
	}
	link := cac.LinkMs(lc.CellsPerSec, lc.Ts, lc.DelayMs)
	if err := link.Validate(); err != nil {
		return fmt.Errorf("admitd: link %q: %w", lc.Name, err)
	}
	if lc.CLR <= 0 || lc.CLR >= 1 {
		return fmt.Errorf("admitd: link %q: CLR target %v outside (0, 1)", lc.Name, lc.CLR)
	}
	st := newLinkState(lc, link, s.cfg, s.reg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.links[lc.Name]; dup {
		return fmt.Errorf("admitd: link %q already registered", lc.Name)
	}
	s.links[lc.Name] = st
	return nil
}

// linkByName resolves a link or reports the known names.
func (s *Server) linkByName(name string) (*linkState, error) {
	s.mu.RLock()
	st, ok := s.links[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("admitd: unknown link %q", name)
	}
	return st, nil
}

// LinkNames returns the registered link names, sorted.
func (s *Server) LinkNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.links))
	for name := range s.links {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Links returns a point-in-time status of every link, sorted by name.
func (s *Server) Links() []LinkStatus {
	names := s.LinkNames()
	out := make([]LinkStatus, 0, len(names))
	for _, name := range names {
		st, err := s.linkByName(name)
		if err != nil {
			continue // removed concurrently; nothing to report
		}
		out = append(out, st.status())
	}
	return out
}

// FlushCaches empties every link's decision cache (used by benchmarks to
// measure the cold path, and available to operators after a model-library
// change).
func (s *Server) FlushCaches() {
	for _, name := range s.LinkNames() {
		if st, err := s.linkByName(name); err == nil {
			st.mu.Lock()
			st.cache.flush()
			st.mu.Unlock()
		}
	}
}

// ParseLinkSpec parses the "name:cells_per_sec:delay_ms:clr" form the CLIs
// use, e.g. "core:365566:20:1e-6".
func ParseLinkSpec(spec string) (LinkConfig, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) != 4 {
		return LinkConfig{}, fmt.Errorf("admitd: want name:cells_per_sec:delay_ms:clr, got %q", spec)
	}
	var lc LinkConfig
	lc.Name = strings.TrimSpace(parts[0])
	if _, err := fmt.Sscanf(parts[1], "%g", &lc.CellsPerSec); err != nil {
		return LinkConfig{}, fmt.Errorf("admitd: bad capacity in %q: %w", spec, err)
	}
	if _, err := fmt.Sscanf(parts[2], "%g", &lc.DelayMs); err != nil {
		return LinkConfig{}, fmt.Errorf("admitd: bad delay in %q: %w", spec, err)
	}
	if _, err := fmt.Sscanf(parts[3], "%g", &lc.CLR); err != nil {
		return LinkConfig{}, fmt.Errorf("admitd: bad CLR in %q: %w", spec, err)
	}
	return lc, nil
}

// ParseLinkSpecs parses a comma-separated list of link specs.
func ParseLinkSpecs(specs string) ([]LinkConfig, error) {
	var out []LinkConfig
	for _, s := range strings.Split(specs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		lc, err := ParseLinkSpec(s)
		if err != nil {
			return nil, err
		}
		out = append(out, lc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("admitd: no links in %q", specs)
	}
	return out, nil
}
