package loadgen_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/admitd"
	"repro/internal/admitd/loadgen"
)

func newServer(t *testing.T) *admitd.Server {
	t.Helper()
	srv := admitd.NewServer(admitd.Config{Journal: true})
	for _, lc := range []admitd.LinkConfig{
		{Name: "core", CellsPerSec: 365566, DelayMs: 20, CLR: 1e-6},
		{Name: "edge", CellsPerSec: 96000, DelayMs: 10, CLR: 1e-5},
	} {
		if err := srv.AddLink(lc); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

var testClasses = []loadgen.Class{{Spec: "z:0.975", Weight: 3}, {Spec: "dar:0.975:1", Weight: 1}}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	ok := loadgen.Config{Links: []string{"core"}, Classes: testClasses}
	if _, err := loadgen.Run(ctx, ok, nil); err == nil {
		t.Error("nil client accepted")
	}
	bad := ok
	bad.Links = nil
	if _, err := loadgen.Run(ctx, bad, loadgen.Direct{Srv: newServer(t)}); err == nil {
		t.Error("empty links accepted")
	}
	bad = ok
	bad.Classes = nil
	if _, err := loadgen.Run(ctx, bad, loadgen.Direct{Srv: newServer(t)}); err == nil {
		t.Error("empty classes accepted")
	}
}

func TestRunDirectDrainsAndBalances(t *testing.T) {
	srv := newServer(t)
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Links: []string{"core", "edge"}, Classes: testClasses,
		Workers: 4, Decisions: 4000, Seed: 42,
	}, loadgen.Direct{Srv: srv})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.Decisions != rep.Admits+rep.Releases {
		t.Errorf("decisions %d != admits %d + releases %d", rep.Decisions, rep.Admits, rep.Releases)
	}
	if rep.Admits != rep.Admitted+rep.Rejected {
		t.Errorf("admits %d != admitted %d + rejected %d", rep.Admits, rep.Admitted, rep.Rejected)
	}
	// Every admitted session was released by the final drain...
	if rep.Releases != rep.Admitted {
		t.Errorf("releases %d != admitted %d after drain", rep.Releases, rep.Admitted)
	}
	for _, st := range srv.Links() {
		if st.Active != 0 {
			t.Errorf("link %s holds %d sessions after drain", st.Name, st.Active)
		}
	}
	// ...and the server journals agree with the client-side tallies.
	var admits, releases int64
	for _, name := range srv.LinkNames() {
		rr, err := srv.ReplayJournal(name)
		if err != nil {
			t.Fatalf("replay %s: %v", name, err)
		}
		admits += int64(rr.Admits)
		releases += int64(rr.Releases)
	}
	if admits != rep.Admitted || releases != rep.Releases {
		t.Errorf("journal admits/releases %d/%d, client %d/%d", admits, releases, rep.Admitted, rep.Releases)
	}
	if rep.Elapsed <= 0 || rep.QPS <= 0 || rep.P99 < rep.P50 {
		t.Errorf("degenerate timing report: %+v", rep)
	}
}

// TestRunDeterministic re-runs a single-worker config against a fresh
// identical server: the seeded RNG must reproduce the decision sequence
// exactly (with one worker there is no scheduler interleaving to vary it).
func TestRunDeterministic(t *testing.T) {
	run := func() loadgen.Report {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			Links: []string{"core", "edge"}, Classes: testClasses,
			Workers: 1, Decisions: 1500, Seed: 7,
		}, loadgen.Direct{Srv: newServer(t)})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Admits != b.Admits || a.Admitted != b.Admitted || a.Rejected != b.Rejected || a.Releases != b.Releases {
		t.Errorf("same seed, different runs:\n  %+v\n  %+v", a, b)
	}
}

func TestRunHTTPTransport(t *testing.T) {
	srv := newServer(t)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Links: []string{"core"}, Classes: testClasses,
		Workers: 2, Decisions: 400, Seed: 9,
	}, loadgen.HTTP{Base: "http://" + addr})
	if err != nil {
		t.Fatalf("Run over HTTP: %v", err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors over HTTP", rep.Errors)
	}
	if st := srv.Links()[0]; st.Active != 0 {
		t.Errorf("core holds %d sessions after drain", st.Active)
	}
}

func TestHTTPClientSurfacesServerErrors(t *testing.T) {
	srv := newServer(t)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	c := loadgen.HTTP{Base: "http://" + addr}
	ctx := context.Background()
	if _, err := c.Admit(ctx, admitd.AdmitRequest{Link: "nope", Class: "z:0.975"}); err == nil ||
		!strings.Contains(err.Error(), "unknown link") {
		t.Errorf("Admit(unknown link) = %v, want the server's error surfaced", err)
	}
	if _, err := c.Release(ctx, admitd.ReleaseRequest{Link: "core", Class: "z:0.975"}); err == nil ||
		!strings.Contains(err.Error(), "cannot release") {
		t.Errorf("Release(empty link) = %v, want the server's error surfaced", err)
	}
}

// TestRunDurationBound checks the Decisions=0 mode: the run stops when ctx
// expires and still drains.
func TestRunDurationBound(t *testing.T) {
	srv := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Links: []string{"core"}, Classes: testClasses,
		Workers: 2, Seed: 3,
	}, loadgen.Direct{Srv: srv})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Decisions == 0 {
		t.Error("duration-bounded run made no decisions")
	}
	// The drain itself is cut off by ctx, so sessions may remain held —
	// but the report must stay internally consistent.
	if rep.Decisions != rep.Admits+rep.Releases {
		t.Errorf("decisions %d != admits %d + releases %d", rep.Decisions, rep.Admits, rep.Releases)
	}
}
