package loadgen_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// Every loadgen worker must be joined by the time Run returns; the leak
// gate turns a straggler into a package failure.
func TestMain(m *testing.M) { leakcheck.Main(m) }
