// Package loadgen is the closed-loop load generator for the admission
// service: configurable worker pools drive admit/hold/release session
// churn across weighted source classes and links, against either an
// in-process *admitd.Server (the soak harness and -inproc benchmarking
// path) or a remote daemon over HTTP/JSON.
//
// The traffic shape follows the telephony view of the paper's CAC
// question: each worker maintains a set of active subscriber sessions,
// admitting new ones and tearing down old ones so the admitted mix walks
// around the link's admission boundary — the regime where decisions are
// actually interesting (a steady stream of both admits and rejections).
// All randomness (class choice, link choice, admit-vs-release) flows from
// per-worker splitmix64-derived seeds, so a run's decision sequence per
// worker is reproducible.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admitd"
	"repro/internal/randx"
	"repro/internal/seed"
	"repro/internal/telemetry"
)

// Client is the transport the generator drives. Implementations must be
// safe for concurrent use.
type Client interface {
	Admit(ctx context.Context, req admitd.AdmitRequest) (admitd.AdmitResponse, error)
	Release(ctx context.Context, req admitd.ReleaseRequest) (admitd.ReleaseResponse, error)
}

// Class is one weighted traffic class in the generated load.
type Class struct {
	// Spec is a modelspec string, e.g. "z:0.975" or "dar:0.975:1".
	Spec string
	// Weight is the relative arrival rate of the class (default 1).
	Weight float64
}

// Config parameterises a load run.
type Config struct {
	// Links to spread sessions across (uniformly at random per session).
	Links []string
	// Classes and their arrival weights.
	Classes []Class
	// Workers is the number of concurrent closed-loop workers (default 4).
	Workers int
	// MaxActivePerWorker caps each worker's concurrently-held sessions
	// (default 64). The cap bounds the drain work at the end of the run
	// and keeps per-worker state small.
	MaxActivePerWorker int
	// Decisions budgets the run: total admit+release operations across
	// all workers, excluding the final drain. 0 means run until ctx is
	// done.
	Decisions int64
	// AdmitBias is the probability a worker with active sessions tries a
	// new admit rather than a release (default 0.55; >0.5 pushes load
	// toward the admission boundary).
	AdmitBias float64
	// Seed feeds the per-worker RNGs through splitmix64 derivation.
	Seed int64
	// Registry receives client-observed latency/outcome metrics; nil uses
	// a private registry.
	Registry *telemetry.Registry
	// QoSDelayMs / QoSCLR are optional per-request QoS overrides passed
	// through on every admit.
	QoSDelayMs, QoSCLR float64
}

// Report is the outcome of a run. Latency quantiles are client-observed
// (per operation, including transport), from the registry histogram.
type Report struct {
	Decisions int64 // admits + releases inside the budget window
	Admits    int64 // admission attempts (sessions offered)
	Admitted  int64 // sessions accepted
	Rejected  int64 // sessions refused
	Releases  int64 // tear-downs (including the final drain)
	Errors    int64 // transport or protocol failures
	Elapsed   time.Duration
	QPS       float64 // decisions per wall-second over the budget window
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
}

// session is one admitted subscriber a worker is holding.
type session struct {
	link  string
	class string
}

// Run drives the configured load until the decision budget is spent or
// ctx is cancelled, then drains every held session and reports.
func Run(ctx context.Context, cfg Config, client Client) (Report, error) {
	if client == nil {
		return Report{}, fmt.Errorf("loadgen: nil client")
	}
	if len(cfg.Links) == 0 {
		return Report{}, fmt.Errorf("loadgen: no links configured")
	}
	if len(cfg.Classes) == 0 {
		return Report{}, fmt.Errorf("loadgen: no classes configured")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	maxActive := cfg.MaxActivePerWorker
	if maxActive <= 0 {
		maxActive = 64
	}
	bias := cfg.AdmitBias
	if bias <= 0 || bias >= 1 {
		bias = 0.55
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	weights, totalW := make([]float64, len(cfg.Classes)), 0.0
	for i, c := range cfg.Classes {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		totalW += w
	}

	opTimer := reg.Timer("loadgen_op_seconds")
	admitTimer := reg.Timer("loadgen_admit_seconds")
	releaseTimer := reg.Timer("loadgen_release_seconds")

	var (
		rep      Report
		spent    atomic.Int64 // decisions consumed from the budget
		admits   atomic.Int64
		admitted atomic.Int64
		rejected atomic.Int64
		releases atomic.Int64
		errs     atomic.Int64
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := randx.NewRand(seed.Derive(cfg.Seed, uint64(w)))
			var active []session

			admitOne := func() {
				cls := cfg.Classes[pickWeighted(r, weights, totalW)].Spec
				link := cfg.Links[r.Intn(len(cfg.Links))]
				t0 := time.Now()
				resp, err := client.Admit(ctx, admitd.AdmitRequest{
					Link: link, Class: cls,
					DelayMs: cfg.QoSDelayMs, CLR: cfg.QoSCLR,
				})
				d := time.Since(t0)
				opTimer.Observe(d)
				admitTimer.Observe(d)
				admits.Add(1)
				switch {
				case err != nil:
					errs.Add(1)
				case resp.Admitted:
					admitted.Add(1)
					active = append(active, session{link: link, class: resp.Class})
				default:
					rejected.Add(1)
				}
			}
			releaseOne := func(i int) {
				sess := active[i]
				active[i] = active[len(active)-1]
				active = active[:len(active)-1]
				t0 := time.Now()
				_, err := client.Release(ctx, admitd.ReleaseRequest{Link: sess.link, Class: sess.class})
				d := time.Since(t0)
				opTimer.Observe(d)
				releaseTimer.Observe(d)
				releases.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}

			for ctx.Err() == nil {
				if cfg.Decisions > 0 && spent.Add(1) > cfg.Decisions {
					break
				}
				if len(active) == 0 || (len(active) < maxActive && r.Float64() < bias) {
					admitOne()
				} else {
					releaseOne(r.Intn(len(active)))
				}
			}
			// Drain outside the budget window so every admitted session is
			// paired with a release in the server journal.
			for len(active) > 0 && ctx.Err() == nil {
				releaseOne(len(active) - 1)
			}
		}(w)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	rep.Admits = admits.Load()
	rep.Admitted = admitted.Load()
	rep.Rejected = rejected.Load()
	rep.Releases = releases.Load()
	rep.Errors = errs.Load()
	rep.Decisions = rep.Admits + rep.Releases
	if rep.Elapsed > 0 {
		rep.QPS = float64(rep.Decisions) / rep.Elapsed.Seconds()
	}
	for _, snap := range reg.Snapshot() {
		if snap.Name == "loadgen_op_seconds" {
			rep.P50 = time.Duration(snap.P50 * float64(time.Second))
			rep.P95 = time.Duration(snap.P95 * float64(time.Second))
			rep.P99 = time.Duration(snap.P99 * float64(time.Second))
		}
	}
	// Cancellation is how duration-bounded runs stop, so ctx.Err() is not
	// surfaced as a failure; the report carries the numbers either way.
	return rep, nil
}

// pickWeighted draws a class index proportionally to weights.
func pickWeighted(r *rand.Rand, weights []float64, total float64) int {
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
