package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/admitd"
)

// Direct drives an in-process server with plain method calls — the soak
// harness's transport, measuring the decision path with zero network in
// the way.
type Direct struct {
	Srv *admitd.Server
}

// Admit implements Client.
func (d Direct) Admit(_ context.Context, req admitd.AdmitRequest) (admitd.AdmitResponse, error) {
	return d.Srv.Admit(req)
}

// Release implements Client.
func (d Direct) Release(_ context.Context, req admitd.ReleaseRequest) (admitd.ReleaseResponse, error) {
	return d.Srv.Release(req)
}

// HTTP drives a remote admitd over its JSON API.
type HTTP struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Admit implements Client.
func (h HTTP) Admit(ctx context.Context, req admitd.AdmitRequest) (admitd.AdmitResponse, error) {
	var resp admitd.AdmitResponse
	err := h.post(ctx, "/v1/admit", req, &resp)
	return resp, err
}

// Release implements Client.
func (h HTTP) Release(ctx context.Context, req admitd.ReleaseRequest) (admitd.ReleaseResponse, error) {
	var resp admitd.ReleaseResponse
	err := h.post(ctx, "/v1/release", req, &resp)
	return resp, err
}

func (h HTTP) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("loadgen: encode %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: build %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hc := h.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("loadgen: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("loadgen: read %s: %w", path, err)
	}
	if hresp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("loadgen: %s: %s (HTTP %d)", path, e.Error, hresp.StatusCode)
		}
		return fmt.Errorf("loadgen: %s: HTTP %d", path, hresp.StatusCode)
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("loadgen: decode %s: %w", path, err)
	}
	return nil
}
