package admitd_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// The admission service is a long-running concurrent server; any goroutine
// that survives the package's tests — an HTTP serve loop that outlived a
// Shutdown, a worker leaked by the soak harness — is a bug the leak gate
// turns into a failure.
func TestMain(m *testing.M) { leakcheck.Main(m) }
