package admitd

import (
	"fmt"
	"sort"

	"repro/internal/cac"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/modelspec"
	"repro/internal/traffic"
)

// ReplayReport summarises a journal replay.
type ReplayReport struct {
	// Events is the number of journal entries replayed.
	Events int
	// Admits and Releases count granted events.
	Admits, Releases int
	// States is the number of distinct admitted states (mix signatures)
	// the link occupied; each was re-verified through batch
	// cac.MixMeetsTargetEst.
	States int
	// FinalActive is the source count after the last event.
	FinalActive int
}

// ReplayJournal replays a link's journal against the batch admission
// check: it reconstructs the admitted mix event by event and re-verifies
// every distinct state the link ever occupied with cac.MixMeetsTargetEst
// — the offline ground truth the online decisions are supposed to agree
// with. It errors on the first infeasible admitted state, on a release
// that underflows a class, and on any malformed event.
//
// Distinct states are verified once: the journal visits the same
// signatures over and over under churn, and feasibility is a pure function
// of the mix, so deduplication loses nothing.
func (s *Server) ReplayJournal(link string) (ReplayReport, error) {
	st, err := s.linkByName(link)
	if err != nil {
		return ReplayReport{}, err
	}
	events, err := s.Journal(link)
	if err != nil {
		return ReplayReport{}, err
	}
	return ReplayEvents(events, st.cfg, st.est)
}

// ReplayEvents is ReplayJournal over an explicit event log and link
// configuration, for harnesses that persisted a journal elsewhere.
func ReplayEvents(events []Event, lc LinkConfig, est cac.Estimator) (ReplayReport, error) {
	if lc.Ts <= 0 {
		lc.Ts = models.Ts
	}
	link := cac.LinkMs(lc.CellsPerSec, lc.Ts, lc.DelayMs)
	if err := link.Validate(); err != nil {
		return ReplayReport{}, err
	}
	moments := make(map[string]*traffic.Moments)
	resolve := func(spec string) (*traffic.Moments, error) {
		spec = CanonicalSpec(spec)
		if mo, ok := moments[spec]; ok {
			return mo, nil
		}
		m, err := modelspec.Parse(spec)
		if err != nil {
			return nil, err
		}
		mo := traffic.NewMoments(m)
		moments[spec] = mo
		return mo, nil
	}

	var rep ReplayReport
	counts := make(map[string]int)
	seen := make(map[string]bool) // admitted-state signatures already verified
	for _, ev := range events {
		rep.Events++
		if !ev.Granted {
			continue // denied admits leave no state to verify
		}
		if ev.Count <= 0 {
			return rep, fmt.Errorf("admitd: replay event %d has count %d", ev.Seq, ev.Count)
		}
		spec := CanonicalSpec(ev.Class)
		switch ev.Op {
		case "admit":
			rep.Admits++
			counts[spec] += ev.Count
		case "release":
			rep.Releases++
			if counts[spec] < ev.Count {
				return rep, fmt.Errorf("admitd: replay event %d releases %d of %q but only %d admitted",
					ev.Seq, ev.Count, spec, counts[spec])
			}
			counts[spec] -= ev.Count
			if counts[spec] == 0 {
				delete(counts, spec)
			}
			continue // releases only shrink the mix; no new state to verify
		default:
			return rep, fmt.Errorf("admitd: replay event %d has unknown op %q", ev.Seq, ev.Op)
		}

		sig, mix, err := mixFromCounts(counts, resolve)
		if err != nil {
			return rep, err
		}
		if seen[sig] {
			continue
		}
		seen[sig] = true
		rep.States++
		ok, err := cac.MixMeetsTargetEst(mix, link, lc.CLR, est)
		if err != nil {
			return rep, fmt.Errorf("admitd: replay event %d (state %q): %w", ev.Seq, sig, err)
		}
		if !ok {
			return rep, fmt.Errorf("admitd: capacity violation at event %d: admitted state %q fails the batch check (link %q, CLR %g)",
				ev.Seq, sig, lc.Name, lc.CLR)
		}
	}
	for _, n := range counts {
		rep.FinalActive += n
	}
	return rep, nil
}

// mixFromCounts renders a counts map as a deterministic (signature, mix)
// pair: specs are collected, sorted, then walked in order.
func mixFromCounts(counts map[string]int, resolve func(string) (*traffic.Moments, error)) (string, core.Mix, error) {
	specs := make([]string, 0, len(counts))
	for spec := range counts {
		specs = append(specs, spec)
	}
	sort.Strings(specs)
	mix := make(core.Mix, 0, len(specs))
	pairs := make([]ClassCount, 0, len(specs))
	for _, spec := range specs {
		mo, err := resolve(spec)
		if err != nil {
			return "", nil, err
		}
		mix = append(mix, core.Component{Model: mo, Count: counts[spec]})
		pairs = append(pairs, ClassCount{Class: spec, Count: counts[spec]})
	}
	return MixSignature(pairs), mix, nil
}
