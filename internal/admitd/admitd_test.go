package admitd_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/admitd"
	"repro/internal/cac"
	"repro/internal/models"
	"repro/internal/modelspec"
	"repro/internal/traffic"
)

// Link fixtures: "big" is the 155 Mb/s OC-3 style link the paper's batch
// experiments use; "small" is sized so the single-class admissible region
// is a couple dozen sources — races and boundary behavior stay cheap.
var (
	bigLink   = admitd.LinkConfig{Name: "big", CellsPerSec: 365566, DelayMs: 20, CLR: 1e-6}
	smallLink = admitd.LinkConfig{Name: "small", CellsPerSec: 96000, DelayMs: 10, CLR: 1e-5}
)

const zClass = "z:0.975"

func newTestServer(t *testing.T, journal bool, links ...admitd.LinkConfig) *admitd.Server {
	t.Helper()
	srv := admitd.NewServer(admitd.Config{Journal: journal})
	for _, lc := range links {
		if err := srv.AddLink(lc); err != nil {
			t.Fatalf("AddLink(%+v): %v", lc, err)
		}
	}
	return srv
}

func TestAddLinkValidation(t *testing.T) {
	srv := admitd.NewServer(admitd.Config{})
	cases := []struct {
		name string
		lc   admitd.LinkConfig
	}{
		{"empty name", admitd.LinkConfig{CellsPerSec: 1000, DelayMs: 10, CLR: 1e-6}},
		{"zero capacity", admitd.LinkConfig{Name: "l", CellsPerSec: 0, DelayMs: 10, CLR: 1e-6}},
		{"negative delay", admitd.LinkConfig{Name: "l", CellsPerSec: 1000, DelayMs: -1, CLR: 1e-6}},
		{"zero CLR", admitd.LinkConfig{Name: "l", CellsPerSec: 1000, DelayMs: 10, CLR: 0}},
		{"CLR one", admitd.LinkConfig{Name: "l", CellsPerSec: 1000, DelayMs: 10, CLR: 1}},
	}
	for _, tc := range cases {
		if err := srv.AddLink(tc.lc); err == nil {
			t.Errorf("%s: AddLink accepted %+v", tc.name, tc.lc)
		}
	}
	if err := srv.AddLink(bigLink); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := srv.AddLink(bigLink); err == nil {
		t.Error("duplicate link name accepted")
	}
}

func TestParseLinkSpec(t *testing.T) {
	lc, err := admitd.ParseLinkSpec(" core:365566:20:1e-6 ")
	if err != nil {
		t.Fatalf("ParseLinkSpec: %v", err)
	}
	want := admitd.LinkConfig{Name: "core", CellsPerSec: 365566, DelayMs: 20, CLR: 1e-6}
	if lc != want {
		t.Errorf("ParseLinkSpec = %+v, want %+v", lc, want)
	}
	for _, bad := range []string{"", "core", "core:1:2", "core:1:2:3:4", "core:x:2:1e-6", "core:1:x:1e-6", "core:1:2:x"} {
		if _, err := admitd.ParseLinkSpec(bad); err == nil {
			t.Errorf("ParseLinkSpec(%q) accepted", bad)
		}
	}
	lcs, err := admitd.ParseLinkSpecs("a:96000:10:1e-5, b:365566:20:1e-6,")
	if err != nil || len(lcs) != 2 || lcs[0].Name != "a" || lcs[1].Name != "b" {
		t.Errorf("ParseLinkSpecs = %+v, %v", lcs, err)
	}
	if _, err := admitd.ParseLinkSpecs(" , "); err == nil {
		t.Error("ParseLinkSpecs of empty list accepted")
	}
}

func TestCanonicalSpecAndMixSignature(t *testing.T) {
	if got := admitd.CanonicalSpec("  Z:0.975 "); got != "z:0.975" {
		t.Errorf("CanonicalSpec = %q", got)
	}
	sig := admitd.MixSignature([]admitd.ClassCount{
		{Class: "Z:0.975", Count: 3},
		{Class: "dar:0.975:1", Count: 2},
	})
	if sig != "dar:0.975:1*2,z:0.975*3" {
		t.Errorf("MixSignature = %q", sig)
	}
	// Order of the input must not matter.
	sig2 := admitd.MixSignature([]admitd.ClassCount{
		{Class: "dar:0.975:1", Count: 2},
		{Class: "z:0.975", Count: 3},
	})
	if sig2 != sig {
		t.Errorf("MixSignature order-dependent: %q vs %q", sig, sig2)
	}
}

func TestAdmitReleaseLifecycle(t *testing.T) {
	srv := newTestServer(t, true, bigLink)

	resp, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !resp.Admitted || resp.Active != 1 || resp.Count != 1 || resp.CacheHit {
		t.Errorf("first admit = %+v", resp)
	}
	if resp.Utilization <= 0 || resp.Utilization >= 1 {
		t.Errorf("utilization %v outside (0, 1)", resp.Utilization)
	}

	// Count > 1 admits in one decision.
	resp, err = srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass, Count: 3})
	if err != nil || !resp.Admitted || resp.Active != 4 {
		t.Fatalf("batch admit = %+v, %v", resp, err)
	}

	st := srv.Links()
	if len(st) != 1 || st[0].Active != 4 || st[0].Signature != "z:0.975*4" {
		t.Errorf("Links = %+v", st)
	}

	rel, err := srv.Release(admitd.ReleaseRequest{Link: "big", Class: "Z:0.975 ", Count: 4})
	if err != nil || rel.Active != 0 || rel.MeanLoad != 0 {
		t.Fatalf("release = %+v, %v", rel, err)
	}
	if _, err := srv.Release(admitd.ReleaseRequest{Link: "big", Class: zClass}); err == nil {
		t.Error("release on empty link accepted")
	}

	// The journal saw every granted event.
	events, err := srv.Journal("big")
	if err != nil || len(events) != 3 {
		t.Fatalf("journal = %d events, %v", len(events), err)
	}
	rep, err := srv.ReplayJournal("big")
	if err != nil {
		t.Fatalf("ReplayJournal: %v", err)
	}
	if rep.Admits != 2 || rep.Releases != 1 || rep.FinalActive != 0 {
		t.Errorf("replay = %+v", rep)
	}
}

func TestAdmitErrors(t *testing.T) {
	srv := newTestServer(t, false, bigLink)
	cases := []struct {
		name string
		req  admitd.AdmitRequest
	}{
		{"unknown link", admitd.AdmitRequest{Link: "nope", Class: zClass}},
		{"empty class", admitd.AdmitRequest{Link: "big"}},
		{"bad class", admitd.AdmitRequest{Link: "big", Class: "quux:1"}},
		{"negative count", admitd.AdmitRequest{Link: "big", Class: zClass, Count: -2}},
		{"request CLR ≥ 1", admitd.AdmitRequest{Link: "big", Class: zClass, CLR: 2}},
	}
	for _, tc := range cases {
		if _, err := srv.Admit(tc.req); err == nil {
			t.Errorf("%s: Admit accepted %+v", tc.name, tc.req)
		}
	}
	if _, err := srv.Release(admitd.ReleaseRequest{Link: "nope", Class: zClass}); err == nil {
		t.Error("release on unknown link accepted")
	}
	if _, err := srv.Release(admitd.ReleaseRequest{Link: "big", Class: zClass, Count: -1}); err == nil {
		t.Error("negative release count accepted")
	}
}

func TestDryRunAndDecisionCache(t *testing.T) {
	srv := newTestServer(t, false, bigLink)

	r1, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass, DryRun: true})
	if err != nil || !r1.Admitted || r1.Active != 0 || r1.Seq != 0 {
		t.Fatalf("dry-run = %+v, %v (must not mutate)", r1, err)
	}
	if r1.CacheHit {
		t.Error("first decision was a cache hit")
	}
	// Same mix, same question: served from the cache.
	r2, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass, DryRun: true})
	if err != nil || !r2.CacheHit {
		t.Fatalf("repeat dry-run = %+v, %v (want cache hit)", r2, err)
	}
	// The real admit asks the same (signature, class, count) question.
	r3, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass})
	if err != nil || !r3.Admitted || !r3.CacheHit || r3.Active != 1 {
		t.Fatalf("admit = %+v, %v", r3, err)
	}
	// The mix changed, so the signature-embedded key makes the old entry
	// unreachable: the next decision recomputes.
	r4, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass, DryRun: true})
	if err != nil || r4.CacheHit {
		t.Fatalf("post-mutation dry-run = %+v, %v (want miss)", r4, err)
	}
	// A per-request QoS override is a distinct cache key.
	r5, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass, DryRun: true, DelayMs: 5})
	if err != nil || r5.CacheHit {
		t.Fatalf("QoS dry-run = %+v, %v (want miss)", r5, err)
	}

	srv.FlushCaches()
	r6, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass, DryRun: true})
	if err != nil || r6.CacheHit {
		t.Fatalf("post-flush dry-run = %+v, %v (want miss)", r6, err)
	}

	// The hit/miss counters saw all of the above.
	var hits, misses float64
	for _, snap := range srv.Registry().Snapshot() {
		if snap.Name != "admitd_cache_total" {
			continue
		}
		switch snap.Labels["result"] {
		case "hit":
			hits = snap.Value
		case "miss":
			misses = snap.Value
		}
	}
	if hits != 2 || misses != 4 {
		t.Errorf("cache counters: %v hits / %v misses, want 2/4", hits, misses)
	}
}

// TestRequestQoSNeverLoosensContract checks the QoS-override semantics: the
// link contract is always enforced, so a request admitted under a tighter
// per-request QoS must also be admissible at the link default.
func TestRequestQoSNeverLoosensContract(t *testing.T) {
	srv := newTestServer(t, false, smallLink)
	for n := 1; ; n++ {
		tight, err := srv.Admit(admitd.AdmitRequest{
			Link: "small", Class: zClass, Count: n, DryRun: true,
			DelayMs: 1, CLR: 1e-9,
		})
		if err != nil {
			t.Fatalf("tight dry-run n=%d: %v", n, err)
		}
		deflt, err := srv.Admit(admitd.AdmitRequest{Link: "small", Class: zClass, Count: n, DryRun: true})
		if err != nil {
			t.Fatalf("default dry-run n=%d: %v", n, err)
		}
		if tight.Admitted && !deflt.Admitted {
			t.Fatalf("n=%d admitted under tighter QoS but not under the link contract", n)
		}
		if !deflt.Admitted {
			break // past the boundary for both; implication held throughout
		}
		if n > 10000 {
			t.Fatal("never hit the admission boundary; link fixture far too large")
		}
	}
}

// TestConcurrentAdmitRaceToCapacity is the capacity-safety test: 2K
// goroutines race to admit one source each on a link that fits exactly K.
// Per-link serialization must admit exactly K — never K+1 — and the
// journal replay must find every admitted state feasible.
func TestConcurrentAdmitRaceToCapacity(t *testing.T) {
	// Ground truth from the batch machinery.
	m, err := modelspec.Parse(zClass)
	if err != nil {
		t.Fatal(err)
	}
	link := cac.LinkMs(smallLink.CellsPerSec, models.Ts, smallLink.DelayMs)
	k, err := cac.MaxAdditional(nil, traffic.NewMoments(m), link, smallLink.CLR)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 {
		t.Fatalf("MaxAdditional = %d; fixture too small to race", k)
	}

	srv := newTestServer(t, true, smallLink)
	var admitted, rejected, errs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2*k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Admit(admitd.AdmitRequest{Link: "small", Class: zClass})
			switch {
			case err != nil:
				errs.Add(1)
			case resp.Admitted:
				admitted.Add(1)
			default:
				rejected.Add(1)
			}
		}()
	}
	wg.Wait()

	if errs.Load() != 0 {
		t.Fatalf("%d admit errors", errs.Load())
	}
	if admitted.Load() != int64(k) || rejected.Load() != int64(k) {
		t.Errorf("race admitted %d / rejected %d, want exactly %d / %d",
			admitted.Load(), rejected.Load(), k, k)
	}
	if st := srv.Links()[0]; st.Active != k {
		t.Errorf("link active = %d, want %d", st.Active, k)
	}
	rep, err := srv.ReplayJournal("small")
	if err != nil {
		t.Fatalf("replay after race: %v", err)
	}
	if rep.Admits != k || rep.FinalActive != k {
		t.Errorf("replay = %+v, want %d admits and final active", rep, k)
	}
}

func TestDecisionStats(t *testing.T) {
	srv := newTestServer(t, false, bigLink)
	for i := 0; i < 5; i++ {
		if _, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := srv.DecisionStats("big")
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 5 {
		t.Errorf("decision count = %d, want 5", st.Count)
	}
	if st.P99 <= 0 || st.P99 > 1 {
		t.Errorf("p99 = %v s; implausible", st.P99)
	}
	if _, err := srv.DecisionStats("nope"); err == nil || !strings.Contains(err.Error(), "unknown link") {
		t.Errorf("DecisionStats(nope) = %v", err)
	}
}

func TestJournalDisabledByDefault(t *testing.T) {
	srv := newTestServer(t, false, bigLink)
	if _, err := srv.Admit(admitd.AdmitRequest{Link: "big", Class: zClass}); err != nil {
		t.Fatal(err)
	}
	events, err := srv.Journal("big")
	if err != nil || len(events) != 0 {
		t.Errorf("journal off: %d events, %v", len(events), err)
	}
	if _, err := srv.Journal("nope"); err == nil {
		t.Error("Journal(nope) accepted")
	}
}
