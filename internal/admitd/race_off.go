//go:build !race

package admitd

// RaceEnabled reports whether the binary was built with the race
// detector. The soak harness and CI gates use it to scale workloads and
// latency budgets: race builds run the same code an order of magnitude
// slower, and a latency assertion tuned for production builds would only
// measure the instrumentation.
const RaceEnabled = false
