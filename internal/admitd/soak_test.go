package admitd_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/admitd"
	"repro/internal/admitd/loadgen"
	"repro/internal/telemetry"
)

// Soak acceptance bounds. The latency budget is on the server-side decision
// histogram (admitd_decision_seconds), not the client view: it is the
// number the paper's "CAC at switch speed" claim lives or dies on. Race
// builds get a 10× budget and a scaled session count — the detector slows
// every mutex handoff by an order of magnitude, and the assertion is about
// the algorithm, not the instrumentation.
const (
	soakSessions      = 1_000_000 // admission attempts, full run
	soakShortSessions = 30_000    // -short / -race scaled run
	soakP99Budget     = 10 * time.Millisecond
	soakRaceP99Budget = 100 * time.Millisecond
	soakMinQPS        = 20_000 // decisions/sec floor, full run only
)

// TestSoakAdmissionService is the end-to-end soak: a worker fleet churns
// ≥1M sessions through an in-process server, then the run is audited on
// three axes — no errors and no leaked state, every admitted state feasible
// under the batch check (journal replay), and p99 decision latency within
// budget at ≥20k decisions/sec.
//
// Goroutine leaks are caught by the package's leakcheck TestMain: any
// worker or serve goroutine that survives this test fails the binary.
func TestSoakAdmissionService(t *testing.T) {
	sessions := soakSessions
	p99Budget := soakP99Budget
	if admitd.RaceEnabled || testing.Short() {
		sessions = soakShortSessions
	}
	if admitd.RaceEnabled {
		p99Budget = soakRaceP99Budget
	}
	// The admit fraction of a 0.55-biased closed loop is ~0.55, so a
	// decision budget of sessions/0.5 comfortably yields ≥ sessions admit
	// attempts; the assertion below checks the floor was actually met.
	decisions := int64(sessions * 2)

	srv := admitd.NewServer(admitd.Config{Journal: true})
	links := []admitd.LinkConfig{
		{Name: "core", CellsPerSec: 365566, DelayMs: 20, CLR: 1e-6},
		{Name: "edge", CellsPerSec: 96000, DelayMs: 10, CLR: 1e-5},
	}
	for _, lc := range links {
		if err := srv.AddLink(lc); err != nil {
			t.Fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Links:   []string{"core", "edge"},
		Classes: []loadgen.Class{{Spec: "z:0.975", Weight: 3}, {Spec: "dar:0.975:1", Weight: 2}},
		Workers: 8, MaxActivePerWorker: 64,
		Decisions: decisions,
		AdmitBias: 0.55,
		Seed:      1996,
		Registry:  reg,
	}, loadgen.Direct{Srv: srv})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	t.Logf("soak: %d decisions (%d sessions offered, %d admitted, %d rejected) in %v — %.0f decisions/sec",
		rep.Decisions, rep.Admits, rep.Admitted, rep.Rejected, rep.Elapsed.Round(time.Millisecond), rep.QPS)

	// Axis 1: clean run. No transport/protocol errors, the session floor
	// was met, and the final drain returned every link to empty.
	if rep.Errors != 0 {
		t.Fatalf("%d errors during the soak", rep.Errors)
	}
	if rep.Admits < int64(sessions) {
		t.Errorf("only %d sessions offered, want ≥ %d", rep.Admits, sessions)
	}
	if rep.Admitted == 0 || rep.Rejected == 0 {
		t.Errorf("degenerate load (admitted %d, rejected %d): the loop never walked the admission boundary",
			rep.Admitted, rep.Rejected)
	}
	for _, st := range srv.Links() {
		if st.Active != 0 || st.MeanLoad != 0 {
			t.Errorf("link %s not drained: %d active, mean %v", st.Name, st.Active, st.MeanLoad)
		}
	}

	// Axis 2: capacity safety. Replay both journals through the batch
	// check; every distinct admitted state must be feasible and the
	// replayed admit total must equal the client-side count.
	var replayAdmits int64
	for _, lc := range links {
		rr, err := srv.ReplayJournal(lc.Name)
		if err != nil {
			t.Fatalf("link %s journal replay: %v", lc.Name, err)
		}
		t.Logf("link %-5s replay: %d events, %d distinct admitted states all feasible", lc.Name, rr.Events, rr.States)
		if rr.FinalActive != 0 {
			t.Errorf("link %s replay ends with %d active", lc.Name, rr.FinalActive)
		}
		if rr.States == 0 {
			t.Errorf("link %s saw no admitted states", lc.Name)
		}
		replayAdmits += int64(rr.Admits)
	}
	if replayAdmits != rep.Admitted {
		t.Errorf("journals carry %d granted admits, client observed %d", replayAdmits, rep.Admitted)
	}

	// Axis 3: performance. Server-side p99 within the declared budget on
	// every link, cache doing real work, and (full builds only) aggregate
	// throughput above the acceptance floor.
	for _, lc := range links {
		ds, err := srv.DecisionStats(lc.Name)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Count == 0 {
			t.Errorf("link %s recorded no decisions", lc.Name)
			continue
		}
		p99 := time.Duration(ds.P99 * float64(time.Second))
		t.Logf("link %-5s decisions %d, p99 %v (budget %v)", lc.Name, ds.Count, p99, p99Budget)
		if p99 > p99Budget {
			t.Errorf("link %s decision p99 %v exceeds budget %v", lc.Name, p99, p99Budget)
		}
	}
	var hits float64
	for _, snap := range srv.Registry().Snapshot() {
		if snap.Name == "admitd_cache_total" && snap.Labels["result"] == "hit" {
			hits += snap.Value
		}
	}
	if hits == 0 {
		t.Error("decision cache never hit across the whole soak")
	}
	if !admitd.RaceEnabled && !testing.Short() && rep.QPS < soakMinQPS {
		t.Errorf("throughput %.0f decisions/sec below the %d floor", rep.QPS, soakMinQPS)
	}
}
