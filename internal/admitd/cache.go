package admitd

// decisionCache memoises admission decisions. Keys embed the canonical
// mix signature (see linkState.cacheKey), which gives the two properties
// the service needs:
//
//   - Correctness without explicit invalidation: the moment a link's mix
//     changes its signature changes, so every entry computed against the
//     old mix becomes unreachable. A cached decision can never be served
//     against state it was not computed for.
//   - Effectiveness under churn: session arrivals and departures walk the
//     counts lattice around an equilibrium, revisiting the same (mix,
//     class, count, QoS) points constantly; each revisit is an O(1) map
//     lookup instead of a fresh large-deviations scan.
//
// Growth is bounded by generational rotation (the flip-flop scheme LRU
// caches approximate cheaply): inserts go to the current generation; when
// it fills, it becomes the previous generation and the oldest entries are
// dropped wholesale. Lookups that hit the previous generation promote the
// entry, so the working set survives rotation.
//
// The cache is deliberately not synchronised: every method is called with
// the owning link's mutex held, on the same critical path that reads and
// mutates the mix the keys are derived from.
type decisionCache struct {
	max       int
	cur, prev map[string]bool
}

func newDecisionCache(max int) *decisionCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &decisionCache{max: max, cur: make(map[string]bool)}
}

// get looks a key up, promoting previous-generation hits.
func (c *decisionCache) get(key string) (feasible, ok bool) {
	if v, ok := c.cur[key]; ok {
		return v, true
	}
	if v, ok := c.prev[key]; ok {
		c.put(key, v)
		return v, true
	}
	return false, false
}

// put inserts, rotating generations when the current one is full.
func (c *decisionCache) put(key string, feasible bool) {
	if len(c.cur) >= c.max {
		c.prev = c.cur
		c.cur = make(map[string]bool, c.max/4)
	}
	c.cur[key] = feasible
}

// flush drops every entry.
func (c *decisionCache) flush() {
	c.cur = make(map[string]bool)
	c.prev = nil
}

// len reports the number of live entries across both generations (previous
// entries also present in current are counted once by construction: put
// never inserts a key already in cur).
func (c *decisionCache) size() int {
	n := len(c.cur)
	for k := range c.prev {
		if _, dup := c.cur[k]; !dup {
			n++
		}
	}
	return n
}
