package admitd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/admitd"
)

// startHTTP boots the server on an ephemeral port and tears it down (with
// drain) when the test finishes.
func startHTTP(t *testing.T, srv *admitd.Server) string {
	t.Helper()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return "http://" + addr
}

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHTTPAdmitReleaseFlow(t *testing.T) {
	srv := newTestServer(t, false, bigLink, smallLink)
	base := startHTTP(t, srv)

	var admit admitd.AdmitResponse
	if code := postJSON(t, base+"/v1/admit", admitd.AdmitRequest{Link: "big", Class: zClass}, &admit); code != http.StatusOK {
		t.Fatalf("admit status %d", code)
	}
	if !admit.Admitted || admit.Active != 1 {
		t.Errorf("admit = %+v", admit)
	}

	code, body := getBody(t, base+"/v1/links")
	if code != http.StatusOK || !strings.Contains(body, `"big"`) || !strings.Contains(body, `"small"`) {
		t.Errorf("links: %d %q", code, body)
	}
	if !strings.Contains(body, `"signature":"z:0.975*1"`) {
		t.Errorf("links body missing mix signature: %q", body)
	}

	var rel admitd.ReleaseResponse
	if code := postJSON(t, base+"/v1/release", admitd.ReleaseRequest{Link: "big", Class: zClass}, &rel); code != http.StatusOK {
		t.Fatalf("release status %d", code)
	}
	if rel.Active != 0 {
		t.Errorf("release = %+v", rel)
	}
}

func TestHTTPQuote(t *testing.T) {
	srv := newTestServer(t, false, smallLink)
	base := startHTTP(t, srv)

	var q admitd.QuoteResponse
	if code := postJSON(t, base+"/v1/quote", admitd.QuoteRequest{Link: "small", Class: zClass, N: 10}, &q); code != http.StatusOK {
		t.Fatalf("quote status %d", code)
	}
	if q.N != 10 || q.MaxAdditional <= 0 || q.EffBandwidthCellsPerFrame <= q.MeanCellsPerFrame {
		t.Errorf("quote = %+v (effective bandwidth must exceed the mean)", q)
	}

	// GET form with query parameters agrees with the POST form.
	code, body := getBody(t, fmt.Sprintf("%s/v1/quote?link=small&class=%s&n=10", base, zClass))
	if code != http.StatusOK {
		t.Fatalf("quote GET status %d: %s", code, body)
	}
	var q2 admitd.QuoteResponse
	if err := json.Unmarshal([]byte(body), &q2); err != nil {
		t.Fatal(err)
	}
	if q2 != q {
		t.Errorf("GET quote %+v != POST quote %+v", q2, q)
	}

	for _, bad := range []string{
		"/v1/quote?link=small&class=" + zClass + "&n=x",
		"/v1/quote?link=small&class=" + zClass + "&clr=x",
	} {
		if code, _ := getBody(t, base+bad); code != http.StatusBadRequest {
			t.Errorf("GET %s status %d, want 400", bad, code)
		}
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	srv := newTestServer(t, false, bigLink)
	base := startHTTP(t, srv)

	// Unknown link → 404 with a JSON error.
	var errResp map[string]string
	if code := postJSON(t, base+"/v1/admit", admitd.AdmitRequest{Link: "nope", Class: zClass}, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown link status %d, want 404", code)
	}
	if !strings.Contains(errResp["error"], "unknown link") {
		t.Errorf("error body = %v", errResp)
	}
	// Bad class → 400.
	if code := postJSON(t, base+"/v1/admit", admitd.AdmitRequest{Link: "big", Class: "quux:1"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad class status %d, want 400", code)
	}
	// Malformed JSON and unknown fields → 400.
	resp, err := http.Post(base+"/v1/admit", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status %d, want 400", resp.StatusCode)
	}
	if code := postJSON(t, base+"/v1/admit", map[string]any{"link": "big", "class": zClass, "bogus": 1}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", code)
	}
	// Wrong method falls through to the catch-all index handler, which
	// rejects non-root paths: a GET of a POST endpoint is a 404, not a 200.
	if code, _ := getBody(t, base+"/v1/admit"); code != http.StatusNotFound {
		t.Errorf("GET /v1/admit status %d, want 404", code)
	}
	// Unknown path → 404.
	if code, _ := getBody(t, base+"/v1/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	srv := newTestServer(t, false, bigLink)
	base := startHTTP(t, srv)
	postJSON(t, base+"/v1/admit", admitd.AdmitRequest{Link: "big", Class: zClass}, nil)

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		`admitd_decisions_total{link="big",outcome="admitted"} 1`,
		`admitd_cache_total{link="big",result="miss"} 1`,
		`admitd_decision_seconds_count{link="big"} 1`,
		`admitd_http_requests_total{code="200",endpoint="admit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if code, body := getBody(t, base+"/vars"); code != http.StatusOK || !strings.Contains(body, "admitd_decision_seconds") {
		t.Errorf("/vars: %d", code)
	}
}

func TestHTTPStartShutdownLifecycle(t *testing.T) {
	srv := newTestServer(t, false, bigLink)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start accepted while serving")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Idempotent: a second Shutdown is a no-op.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("repeat Shutdown: %v", err)
	}
	// The listener is gone.
	if _, err := http.Get("http://" + addr + "/v1/links"); err == nil {
		t.Error("GET succeeded after Shutdown")
	}
	// And the server can be started again (fresh port).
	addr2, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if code, _ := getBody(t, "http://"+addr2+"/v1/links"); code != http.StatusOK {
		t.Errorf("links after restart: %d", code)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("final Shutdown: %v", err)
	}
}
